#include <algorithm>
#include <complex>
#include <string>
#include <vector>

#include "common/annotations.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/parallel.hpp"
#include "common/task_graph.hpp"
#include "core/engine_detail.hpp"

/// \file factor_batched.cpp
/// The batched execution engine: Algorithm 3 (factorization stage) and
/// Algorithm 4 (solution stage). Every line of the paper's pseudocode maps
/// to one or two batched device calls:
///   BATCHED-LU-FACTORIZE  -> getrf_batched / getrf_nopivot_batched
///   BATCHED-LU-SOLVE      -> getrs_batched / getrs_nopivot_batched
///                            (blocked TRSM engine underneath: pivots applied
///                            once, register-tiled diagonal solves, packed
///                            GEMM trailing updates — see trsm_kernel.hpp)
///   BATCHED-GEMM          -> gemm_batched, or gemm_strided_batched when the
///                            level's node sizes are uniform (Sec. III-C).

namespace hodlrx::detail {

template <typename T>
void FactorEngine<T>::run_factor_batched(F& f, FactorReport* report) {
  if (sched_mode() == SchedMode::kGraph) {
    run_factor_batched_graph(f, report);
    return;
  }
  const ClusterTree& tree = f.tree_;
  const index_t L = depth(f);
  const BatchPolicy policy = f.opt_.policy;
  const bool pivoted = f.opt_.kform == KForm::kPivoted;
  MatrixView<T> ybig = f.ybig_;
  ConstMatrixView<T> vbig = f.vbig_;
  const T* vdata = f.vbig_.data();
  T* ydata = f.ybig_.data();
  const index_t ldv = f.vbig_.rows();
  const index_t ldy = f.ybig_.rows();

  // --- Algorithm 3, lines 2-3: batched leaf LU + leaf panel solves --------
  {
    const index_t leaves = tree.num_leaves();
    std::vector<MatrixView<T>> d(leaves);
    std::vector<index_t*> piv(leaves);
    for (index_t j = 0; j < leaves; ++j) {
      d[j] = leaf_lu(f, j);
      piv[j] = leaf_pivots(f, j);
    }
    getrf_batched<T>(d, piv, policy);
    if (f.total_cols_ > 0) {
      std::vector<ConstMatrixView<T>> lu(leaves);
      std::vector<const index_t*> cpiv(leaves);
      std::vector<MatrixView<T>> rhs(leaves);
      for (index_t j = 0; j < leaves; ++j) {
        lu[j] = d[j];
        cpiv[j] = piv[j];
        const ClusterNode& c = tree.node(tree.leaf(j));
        rhs[j] = ybig.block(c.begin, 0, c.size(), f.total_cols_);
      }
      getrs_batched<T>(lu, cpiv, rhs, policy);
    }
  }

  // One W workspace reused by every level (sized for the largest), instead
  // of a fresh heap allocation per level: the batched engine's level sweep
  // is the hot path, and the per-level W can reach hundreds of MB.
  index_t wmax = 0;
  for (index_t l = L - 1; l >= 0; --l) {
    if (f.level_rank_[l + 1] == 0) continue;
    wmax = std::max(wmax, 2 * f.kfac_[l].count * f.level_rank_[l + 1] *
                              f.col_offset_[l + 1]);
  }
  Matrix<T> wbuf(wmax, 1);

  // --- Algorithm 3, lines 4-11: level sweep -------------------------------
  for (index_t l = L - 1; l >= 0; --l) {
    const index_t r = f.level_rank_[l + 1];
    LevelK& klev = f.kfac_[l];
    if (r == 0) continue;
    const index_t panel = f.col_offset_[l + 1];
    const index_t q = klev.count;             // parents
    const index_t c = 2 * q;                  // children
    const bool uniform = f.level_uniform_[l + 1] != 0;
    const index_t s =
        uniform ? tree.node(ClusterTree::level_begin(l + 1)).size() : 0;
    const index_t r2 = klev.r2;
    T* kdata = klev.data.data();
    const index_t kstride = r2 * r2;

    // Line 5 + 7: T blocks written straight into the K storage.
    // Pivoted:  T_a -> K(0,0), T_b -> K(r,r).  Identity-diagonal:
    // T_b -> K(0,r), T_a -> K(r,0).
    const index_t off_ta = pivoted ? 0 : r;                    // (0,0) / (r,0)
    const index_t off_tb = pivoted ? (r * r2 + r) : (r * r2);  // (r,r) / (0,r)
    if (uniform) {
      // left children: begins 2k*s; right children: (2k+1)*s.
      gemm_strided_batched<T>(Op::C, Op::N, r, r, s, T{1},
                              vdata + panel * ldv, ldv, 2 * s,
                              ydata + panel * ldy, ldy, 2 * s, T{0},
                              kdata + off_ta, r2, kstride, q, policy);
      gemm_strided_batched<T>(Op::C, Op::N, r, r, s, T{1},
                              vdata + s + panel * ldv, ldv, 2 * s,
                              ydata + s + panel * ldy, ldy, 2 * s, T{0},
                              kdata + off_tb, r2, kstride, q, policy);
    } else {
      std::vector<ConstMatrixView<T>> av(c), bv(c);
      std::vector<MatrixView<T>> cv(c);
      for (index_t k = 0; k < q; ++k) {
        const index_t gamma = ClusterTree::level_begin(l) + k;
        const index_t a = ClusterTree::left_child(gamma);
        const index_t b = ClusterTree::right_child(gamma);
        const ClusterNode& cav = tree.node(a);
        const ClusterNode& cbv = tree.node(b);
        MatrixView<T> kk = klev.block(k);
        av[2 * k] = vbig.block(cav.begin, panel, cav.size(), r);
        bv[2 * k] = ybig.block(cav.begin, panel, cav.size(), r);
        cv[2 * k] = pivoted ? kk.block(0, 0, r, r) : kk.block(r, 0, r, r);
        av[2 * k + 1] = vbig.block(cbv.begin, panel, cbv.size(), r);
        bv[2 * k + 1] = ybig.block(cbv.begin, panel, cbv.size(), r);
        cv[2 * k + 1] = pivoted ? kk.block(r, r, r, r) : kk.block(0, r, r, r);
      }
      gemm_batched<T>(Op::C, Op::N, T{1}, av, bv, T{0}, cv, policy);
    }
    // Identity blocks of K (cheap elementwise pass).
    parallel_for(q, [&](index_t k) {
      fill_k_identities(klev.block(k), r, f.opt_.kform);
    });

    // Line 8: batched LU of all K_gamma at this level.
    {
      std::vector<MatrixView<T>> kb(q);
      for (index_t k = 0; k < q; ++k) kb[k] = klev.block(k);
      if (pivoted) {
        std::vector<index_t*> piv(q);
        for (index_t k = 0; k < q; ++k) piv[k] = klev.pivots(k);
        getrf_batched<T>(kb, piv, policy);
      } else if (f.opt_.on_breakdown == OnBreakdown::kThrow) {
        getrf_nopivot_batched<T>(kb, policy);
      } else {
        // Pivot-free batched LU can break down (exact zero pivot). A
        // failure leaves the WHOLE level's blocks half-factored, so the
        // recovery ladder snapshots the level, restores it and re-factors
        // every block WITH pivoting in one batched call (the kb views stay
        // valid — the data vector is copied into, not reassigned). Under
        // kReport the breakdown is recorded and rethrown.
        const std::vector<T> snap(klev.data);
        try {
          getrf_nopivot_batched<T>(kb, policy);
        } catch (const Error& e) {
          if (report != nullptr) {
            ++report->lu_breakdowns;
            report->events.push_back(
                "factor: batched pivot-free LU broke down on level " +
                std::to_string(l) + " (" + e.what() + ")");
          }
          if (f.opt_.on_breakdown != OnBreakdown::kRecover) throw;
          std::copy(snap.begin(), snap.end(), klev.data.begin());
          ensure_pivot_storage(klev);
          std::vector<index_t*> piv(q);
          for (index_t k = 0; k < q; ++k) piv[k] = klev.pivots(k);
          getrf_batched<T>(kb, piv, policy);
          std::fill(klev.pivoted.begin(), klev.pivoted.end(), 1);
          fault_stats::detail::add_recovered(fault::Site::kGetrfPivot);
          if (report != nullptr) {
            report->lu_pivot_retries += q;
            report->events.push_back(
                "factor: level " + std::to_string(l) + " (" +
                std::to_string(q) + " K block(s)) re-factored with partial "
                "pivoting");
          }
        }
      }
    }

    if (panel == 0) continue;

    // Line 6: W = (V^{l+1})^H (.) Ybig(:, prefix), block rows per child.
    T* wdata = wbuf.data();
    const index_t ldw = c * r;
    if (uniform && pivoted) {
      gemm_strided_batched<T>(Op::C, Op::N, r, panel, s, T{1},
                              vdata + panel * ldv, ldv, s, ydata, ldy, s,
                              T{0}, wdata, ldw, r, c, policy);
    } else if (uniform) {  // identity-diagonal: swap the block rows
      gemm_strided_batched<T>(Op::C, Op::N, r, panel, s, T{1},
                              vdata + s + panel * ldv, ldv, 2 * s,
                              ydata + s, ldy, 2 * s, T{0}, wdata, ldw,
                              2 * r, q, policy);
      gemm_strided_batched<T>(Op::C, Op::N, r, panel, s, T{1},
                              vdata + panel * ldv, ldv, 2 * s, ydata, ldy,
                              2 * s, T{0}, wdata + r, ldw, 2 * r, q, policy);
    } else {
      std::vector<ConstMatrixView<T>> av(c), bv(c);
      std::vector<MatrixView<T>> cv(c);
      for (index_t k = 0; k < q; ++k) {
        const index_t gamma = ClusterTree::level_begin(l) + k;
        const ClusterNode& cav = tree.node(ClusterTree::left_child(gamma));
        const ClusterNode& cbv = tree.node(ClusterTree::right_child(gamma));
        av[2 * k] = vbig.block(cav.begin, panel, cav.size(), r);
        bv[2 * k] = ConstMatrixView<T>(ydata + cav.begin, cav.size(), panel, ldy);
        av[2 * k + 1] = vbig.block(cbv.begin, panel, cbv.size(), r);
        bv[2 * k + 1] =
            ConstMatrixView<T>(ydata + cbv.begin, cbv.size(), panel, ldy);
        const index_t row_a = pivoted ? 2 * k * r : (2 * k + 1) * r;
        const index_t row_b = pivoted ? (2 * k + 1) * r : 2 * k * r;
        cv[2 * k] = MatrixView<T>{wdata + row_a, r, panel, ldw};
        cv[2 * k + 1] = MatrixView<T>{wdata + row_b, r, panel, ldw};
      }
      gemm_batched<T>(Op::C, Op::N, T{1}, av, bv, T{0}, cv, policy);
    }

    // Line 9: batched K solve, one 2r x panel block per parent. Blocks the
    // recovery ladder re-factored with pivots are grouped into their own
    // batched call (at most two launches per level).
    {
      std::vector<ConstMatrixView<T>> lu_p, lu_n;
      std::vector<const index_t*> piv_p;
      std::vector<MatrixView<T>> rhs_p, rhs_n;
      for (index_t k = 0; k < q; ++k) {
        MatrixView<T> rhs{wdata + 2 * k * r, r2, panel, ldw};
        if (block_pivoted(klev, pivoted, k)) {
          lu_p.push_back(klev.block(k));
          piv_p.push_back(klev.pivots(k));
          rhs_p.push_back(rhs);
        } else {
          lu_n.push_back(klev.block(k));
          rhs_n.push_back(rhs);
        }
      }
      if (!lu_p.empty()) getrs_batched<T>(lu_p, piv_p, rhs_p, policy);
      if (!lu_n.empty()) getrs_nopivot_batched<T>(lu_n, rhs_n, policy);
    }

    // Line 10: prefix update, one block per child (solution order is
    // [w_a; w_b] for both K forms).
    if (uniform) {
      gemm_strided_batched<T>(Op::N, Op::N, s, panel, r, T{-1},
                              ydata + panel * ldy, ldy, s, wdata, ldw, r,
                              T{1}, ydata, ldy, s, c, policy);
    } else {
      std::vector<ConstMatrixView<T>> av(c), bv(c);
      std::vector<MatrixView<T>> cv(c);
      for (index_t t = 0; t < c; ++t) {
        const index_t nu = ClusterTree::level_begin(l + 1) + t;
        const ClusterNode& cn = tree.node(nu);
        av[t] = ybig.block(cn.begin, panel, cn.size(), r);
        bv[t] = ConstMatrixView<T>(wdata + t * r, r, panel, ldw);
        cv[t] = ybig.block(cn.begin, 0, cn.size(), panel);
      }
      gemm_batched<T>(Op::N, Op::N, T{-1}, av, bv, T{1}, cv, policy);
    }
  }
}

/// Dependency-graph variant of the factorization stage (HODLRX_SCHED=graph).
///
/// Instead of one barrier per stage per level, the whole of Algorithm 3 is
/// expressed as a DAG and handed to TaskGraph. The data-flow facts that
/// shape it (panels are packed shallow-first: col_offset_[1] = 0, so level
/// l's sweep reads panel columns [co[l+1], co[l+2]) and its prefix update
/// overwrites everything BELOW them, [0, co[l+1])):
///
///  - T(l) and W(l) read Y columns the nearest deeper level's prefix update
///    last wrote (or, for the deepest ranked level, the leaf solves): the
///    cross-level chain prefix(deeper) -> T/W(shallower) is a TRUE
///    dependency, wired at chunk granularity by ROW OVERLAP — a shallow T
///    chunk starts the moment the deeper prefix chunks covering its rows
///    finish, not when the whole deeper level drains.
///  - Deeper T reads columns at or above co[l+2], disjoint from every
///    shallower prefix write: no anti-dependency edges are needed.
///  - K-LU(l) feeds only Ksolve(l): the K factorizations of all levels
///    overlap the rest of the sweep (and each other) freely.
///
/// Each stage is chunked over its parents/children so independent tiles
/// become independent nodes (node bodies run with the pool's in-region flag
/// set — their internal batched launches execute inline, and all parallelism
/// comes from the graph). W workspaces are per-level slices of one buffer —
/// lifetimes are per-node, not per-level-sweep, because two levels' W/Ksolve
/// stages may be in flight at once.
///
/// Under an asynchronous device backend (HODLRX_BACKEND=host-async) the
/// gph.run() below issues this same DAG onto backend streams: nodes become
/// stream launches, cross-stream chunk dependencies become record/wait event
/// edges, and one synchronize drains the factorization — see
/// TaskGraph::run_on_streams (docs/device-backend.md).
template <typename T>
void FactorEngine<T>::run_factor_batched_graph(F& f, FactorReport* report) {
  const ClusterTree& tree = f.tree_;
  const index_t L = depth(f);
  const BatchPolicy policy = f.opt_.policy;
  const bool pivoted = f.opt_.kform == KForm::kPivoted;
  MatrixView<T> ybig = f.ybig_;
  ConstMatrixView<T> vbig = f.vbig_;
  const T* vdata = f.vbig_.data();
  T* ydata = f.ybig_.data();
  const index_t ldv = f.vbig_.rows();
  const index_t ldy = f.ybig_.rows();

  TaskGraph gph;
  Mutex rec_mu;  // serializes report mutations + lazy pivot storage

  const index_t nthreads = max_threads();
  const auto chunks_of = [nthreads](index_t m) {
    return std::max<index_t>(1, std::min<index_t>(m, 4 * nthreads));
  };

  // A graph node together with the contiguous Y row range it wrote; the
  // cross-level prefix -> T/W edges are wired by row-interval overlap.
  struct Span {
    TaskGraph::NodeId node;
    index_t row0, row1;
  };

  // --- leaf stage: LU + panel solve of a chunk of leaves is one node (the
  // solve of leaf j needs only leaf j's factors).
  const index_t leaves = tree.num_leaves();
  const index_t lch = chunks_of(leaves);
  std::vector<Span> leaf_nodes(static_cast<std::size_t>(lch));
  for (index_t ch = 0; ch < lch; ++ch) {
    const index_t j0 = ch * leaves / lch;
    const index_t j1 = (ch + 1) * leaves / lch;
    const ClusterNode& first = tree.node(tree.leaf(j0));
    const ClusterNode& last = tree.node(tree.leaf(j1 - 1));
    leaf_nodes[static_cast<std::size_t>(ch)].row0 = first.begin;
    leaf_nodes[static_cast<std::size_t>(ch)].row1 = last.begin + last.size();
    leaf_nodes[static_cast<std::size_t>(ch)].node = gph.add([&f, &tree, ybig,
                                                             policy, j0, j1] {
      const index_t jn = j1 - j0;
      std::vector<MatrixView<T>> d(static_cast<std::size_t>(jn));
      std::vector<index_t*> piv(static_cast<std::size_t>(jn));
      for (index_t j = j0; j < j1; ++j) {
        d[static_cast<std::size_t>(j - j0)] = leaf_lu(f, j);
        piv[static_cast<std::size_t>(j - j0)] = leaf_pivots(f, j);
      }
      getrf_batched<T>(d, piv, policy);
      if (f.total_cols_ > 0) {
        std::vector<ConstMatrixView<T>> lu(static_cast<std::size_t>(jn));
        std::vector<const index_t*> cpiv(static_cast<std::size_t>(jn));
        std::vector<MatrixView<T>> rhs(static_cast<std::size_t>(jn));
        for (index_t j = j0; j < j1; ++j) {
          const std::size_t i = static_cast<std::size_t>(j - j0);
          lu[i] = d[i];
          cpiv[i] = piv[i];
          const ClusterNode& c = tree.node(tree.leaf(j));
          MatrixView<T> yb = ybig;
          rhs[i] = yb.block(c.begin, 0, c.size(), f.total_cols_);
        }
        getrs_batched<T>(lu, cpiv, rhs, policy);
      }
    }, "leafLU", ch);
    // Audit: the chunk LU-factors its leaves (model the factor/pivot
    // storage as one space in matrix-row units — chunks are disjoint) and
    // panel-solves its Y rows across every column.
    const Span& ls = leaf_nodes[static_cast<std::size_t>(ch)];
    gph.writes(ls.node, f.d_ipiv_.data(), ls.row0, ls.row1);
    if (f.total_cols_ > 0)
      gph.writes(ls.node, ydata, ls.row0, ls.row1, 0, f.total_cols_);
  }

  // Per-level W slices of one buffer (summed, not maxed: two levels' W
  // stages can be live simultaneously).
  std::vector<index_t> woff(static_cast<std::size_t>(L), 0);
  index_t wtot = 0;
  for (index_t l = L - 1; l >= 0; --l) {
    if (f.level_rank_[l + 1] == 0) continue;
    woff[static_cast<std::size_t>(l)] = wtot;
    wtot += 2 * f.kfac_[l].count * f.level_rank_[l + 1] * f.col_offset_[l + 1];
  }
  Matrix<T> wbuf(wtot, 1);

  // T/KLU/W/Ksolve/prefix chunks of one level share chunk boundaries (chunk
  // ch covers the same parents in every stage), so intra-level edges are
  // chunk-to-chunk. `writers` holds the last nodes to have written the Y
  // prefix/panel columns the next shallower level reads: the leaf-solve
  // chunks initially, then each level's prefix chunks.
  std::vector<Span> writers = leaf_nodes;
  // Whether `writers` currently holds prefix chunks (vs the initial leaf
  // solves): prefix -> T/W edges carry the "xlevel" tag so the audit
  // mutation test (test_scheduler) can delete exactly one of them.
  bool writers_are_prefix = false;

  for (index_t l = L - 1; l >= 0; --l) {
    const index_t r = f.level_rank_[l + 1];
    if (r == 0) continue;
    LevelK* const kl = &f.kfac_[l];
    const index_t panel = f.col_offset_[l + 1];
    const index_t q = kl->count;
    const index_t c = 2 * q;
    const bool uniform = f.level_uniform_[l + 1] != 0;
    const index_t s =
        uniform ? tree.node(ClusterTree::level_begin(l + 1)).size() : 0;
    const index_t r2 = kl->r2;
    T* const kdata = kl->data.data();
    const index_t kstride = r2 * r2;
    const index_t off_ta = pivoted ? 0 : r;
    const index_t off_tb = pivoted ? (r * r2 + r) : (r * r2);
    T* const wdata = wbuf.data() + woff[static_cast<std::size_t>(l)];
    const index_t ldw = c * r;
    const index_t qch = chunks_of(q);
    const KForm kform = f.opt_.kform;
    const OnBreakdown on_bd = f.opt_.on_breakdown;

    std::vector<TaskGraph::NodeId> t_nodes(static_cast<std::size_t>(qch)),
        klu_nodes(static_cast<std::size_t>(qch)),
        w_nodes(static_cast<std::size_t>(qch)),
        ks_nodes(static_cast<std::size_t>(qch)),
        pf_nodes(static_cast<std::size_t>(qch));

    for (index_t ch = 0; ch < qch; ++ch) {
      const index_t k0 = ch * q / qch;
      const index_t k1 = (ch + 1) * q / qch;
      const index_t qn = k1 - k0;
      // The chunk's Y row range (parents k0..k1-1 of level l), used by both
      // the audit declarations here and the cross-level edges below.
      const ClusterNode& rn0 = tree.node(ClusterTree::level_begin(l) + k0);
      const ClusterNode& rn1 = tree.node(ClusterTree::level_begin(l) + k1 - 1);
      const index_t row0 = rn0.begin;
      const index_t row1 = rn1.begin + rn1.size();

      // --- T(l) chunk: K assembly GEMMs + identity fill ------------------
      t_nodes[static_cast<std::size_t>(ch)] = gph.add([=, &tree] {
        if (uniform) {
          gemm_strided_batched<T>(Op::C, Op::N, r, r, s, T{1},
                                  vdata + panel * ldv + k0 * 2 * s, ldv, 2 * s,
                                  ydata + panel * ldy + k0 * 2 * s, ldy, 2 * s,
                                  T{0}, kdata + off_ta + k0 * kstride, r2,
                                  kstride, qn, policy);
          gemm_strided_batched<T>(Op::C, Op::N, r, r, s, T{1},
                                  vdata + s + panel * ldv + k0 * 2 * s, ldv,
                                  2 * s, ydata + s + panel * ldy + k0 * 2 * s,
                                  ldy, 2 * s, T{0},
                                  kdata + off_tb + k0 * kstride, r2, kstride,
                                  qn, policy);
        } else {
          ConstMatrixView<T> vb = vbig;
          ConstMatrixView<T> yb(ybig);
          std::vector<ConstMatrixView<T>> av(static_cast<std::size_t>(2 * qn)),
              bv(static_cast<std::size_t>(2 * qn));
          std::vector<MatrixView<T>> cv(static_cast<std::size_t>(2 * qn));
          for (index_t k = k0; k < k1; ++k) {
            const std::size_t i = static_cast<std::size_t>(2 * (k - k0));
            const index_t gamma = ClusterTree::level_begin(l) + k;
            const ClusterNode& cav =
                tree.node(ClusterTree::left_child(gamma));
            const ClusterNode& cbv =
                tree.node(ClusterTree::right_child(gamma));
            MatrixView<T> kk = kl->block(k);
            av[i] = vb.block(cav.begin, panel, cav.size(), r);
            bv[i] = yb.block(cav.begin, panel, cav.size(), r);
            cv[i] = pivoted ? kk.block(0, 0, r, r) : kk.block(r, 0, r, r);
            av[i + 1] = vb.block(cbv.begin, panel, cbv.size(), r);
            bv[i + 1] = yb.block(cbv.begin, panel, cbv.size(), r);
            cv[i + 1] = pivoted ? kk.block(r, r, r, r) : kk.block(0, r, r, r);
          }
          gemm_batched<T>(Op::C, Op::N, T{1}, av, bv, T{0}, cv, policy);
        }
        for (index_t k = k0; k < k1; ++k)
          fill_k_identities(kl->block(k), r, kform);
      }, "T", l, ch);
      // Audit: reads the chunk's Y panel columns, writes its K blocks
      // (block-index units — kdata is a per-level space).
      gph.reads(t_nodes[static_cast<std::size_t>(ch)], ydata, row0, row1,
                panel, panel + r);
      gph.writes(t_nodes[static_cast<std::size_t>(ch)], kdata, k0, k1);

      // --- K-LU(l) chunk (with the per-chunk recovery ladder) ------------
      klu_nodes[static_cast<std::size_t>(ch)] = gph.add([=, &rec_mu] {
        std::vector<MatrixView<T>> kb(static_cast<std::size_t>(qn));
        for (index_t k = k0; k < k1; ++k)
          kb[static_cast<std::size_t>(k - k0)] = kl->block(k);
        if (pivoted) {
          std::vector<index_t*> piv(static_cast<std::size_t>(qn));
          for (index_t k = k0; k < k1; ++k)
            piv[static_cast<std::size_t>(k - k0)] = kl->pivots(k);
          getrf_batched<T>(kb, piv, policy);
        } else if (on_bd == OnBreakdown::kThrow) {
          getrf_nopivot_batched<T>(kb, policy);
        } else {
          // Recovery is per chunk here: snapshot and re-factor only this
          // chunk's blocks. ensure_pivot_storage is shared level state, so
          // it runs under the mutex (concurrent chunks may both break).
          const std::size_t b0 = static_cast<std::size_t>(k0 * kstride);
          const std::vector<T> snap(
              kl->data.begin() + static_cast<std::ptrdiff_t>(b0),
              kl->data.begin() + static_cast<std::ptrdiff_t>(
                                     b0 + static_cast<std::size_t>(
                                              qn * kstride)));
          try {
            getrf_nopivot_batched<T>(kb, policy);
          } catch (const Error& e) {
            if (report != nullptr) {
              MutexLock lk(rec_mu);
              ++report->lu_breakdowns;
              report->events.push_back(
                  "factor: batched pivot-free LU broke down on level " +
                  std::to_string(l) + " (" + e.what() + ")");
            }
            if (on_bd != OnBreakdown::kRecover) throw;
            std::copy(snap.begin(), snap.end(),
                      kl->data.begin() + static_cast<std::ptrdiff_t>(b0));
            {
              MutexLock lk(rec_mu);
              ensure_pivot_storage(*kl);
            }
            std::vector<index_t*> piv(static_cast<std::size_t>(qn));
            for (index_t k = k0; k < k1; ++k)
              piv[static_cast<std::size_t>(k - k0)] = kl->pivots(k);
            getrf_batched<T>(kb, piv, policy);
            for (index_t k = k0; k < k1; ++k)
              kl->pivoted[static_cast<std::size_t>(k)] = 1;
            fault_stats::detail::add_recovered(fault::Site::kGetrfPivot);
            if (report != nullptr) {
              MutexLock lk(rec_mu);
              report->lu_pivot_retries += qn;
              report->events.push_back(
                  "factor: level " + std::to_string(l) + " (" +
                  std::to_string(qn) +
                  " K block(s)) re-factored with partial pivoting");
            }
          }
        }
      }, "K-LU", l, ch);
      // Audit: factors the chunk's K blocks in place. Pivot storage
      // (&kl->ipiv: identity for the level's ipiv+pivoted vectors, which
      // may reallocate) is written per chunk when the level is pivoted
      // up front; the recovery ladder's lazy allocation + pivot writes are
      // serialized by rec_mu, declared as a guarded write over the whole
      // level — mutually non-conflicting, but every unguarded Ksolve read
      // still needs an ordering edge (the all-to-all K-LU -> Ksolve set).
      gph.writes(klu_nodes[static_cast<std::size_t>(ch)], kdata, k0, k1);
      if (pivoted)
        gph.writes(klu_nodes[static_cast<std::size_t>(ch)], &kl->ipiv, k0, k1);
      else if (on_bd != OnBreakdown::kThrow)
        gph.writes_guarded(klu_nodes[static_cast<std::size_t>(ch)], &kl->ipiv,
                           0, q);
      gph.add_edge(t_nodes[static_cast<std::size_t>(ch)],
                   klu_nodes[static_cast<std::size_t>(ch)]);

      if (panel == 0) continue;

      // --- W(l) chunk ----------------------------------------------------
      w_nodes[static_cast<std::size_t>(ch)] = gph.add([=, &tree] {
        if (uniform && pivoted) {
          gemm_strided_batched<T>(Op::C, Op::N, r, panel, s, T{1},
                                  vdata + panel * ldv + 2 * k0 * s, ldv, s,
                                  ydata + 2 * k0 * s, ldy, s, T{0},
                                  wdata + 2 * k0 * r, ldw, r, 2 * qn, policy);
        } else if (uniform) {  // identity-diagonal: swap the block rows
          gemm_strided_batched<T>(Op::C, Op::N, r, panel, s, T{1},
                                  vdata + s + panel * ldv + k0 * 2 * s, ldv,
                                  2 * s, ydata + s + k0 * 2 * s, ldy, 2 * s,
                                  T{0}, wdata + k0 * 2 * r, ldw, 2 * r, qn,
                                  policy);
          gemm_strided_batched<T>(Op::C, Op::N, r, panel, s, T{1},
                                  vdata + panel * ldv + k0 * 2 * s, ldv, 2 * s,
                                  ydata + k0 * 2 * s, ldy, 2 * s, T{0},
                                  wdata + r + k0 * 2 * r, ldw, 2 * r, qn,
                                  policy);
        } else {
          ConstMatrixView<T> vb = vbig;
          std::vector<ConstMatrixView<T>> av(static_cast<std::size_t>(2 * qn)),
              bv(static_cast<std::size_t>(2 * qn));
          std::vector<MatrixView<T>> cv(static_cast<std::size_t>(2 * qn));
          for (index_t k = k0; k < k1; ++k) {
            const std::size_t i = static_cast<std::size_t>(2 * (k - k0));
            const index_t gamma = ClusterTree::level_begin(l) + k;
            const ClusterNode& cav =
                tree.node(ClusterTree::left_child(gamma));
            const ClusterNode& cbv =
                tree.node(ClusterTree::right_child(gamma));
            av[i] = vb.block(cav.begin, panel, cav.size(), r);
            bv[i] = ConstMatrixView<T>(ydata + cav.begin, cav.size(), panel,
                                       ldy);
            av[i + 1] = vb.block(cbv.begin, panel, cbv.size(), r);
            bv[i + 1] = ConstMatrixView<T>(ydata + cbv.begin, cbv.size(),
                                           panel, ldy);
            const index_t row_a = pivoted ? 2 * k * r : (2 * k + 1) * r;
            const index_t row_b = pivoted ? (2 * k + 1) * r : 2 * k * r;
            cv[i] = MatrixView<T>{wdata + row_a, r, panel, ldw};
            cv[i + 1] = MatrixView<T>{wdata + row_b, r, panel, ldw};
          }
          gemm_batched<T>(Op::C, Op::N, T{1}, av, bv, T{0}, cv, policy);
        }
      }, "W", l, ch);
      // Audit: reads the chunk's Y prefix columns, writes its rows of the
      // level's W slice (element-row units within the slice).
      gph.reads(w_nodes[static_cast<std::size_t>(ch)], ydata, row0, row1, 0,
                panel);
      gph.writes(w_nodes[static_cast<std::size_t>(ch)], wdata, 2 * k0 * r,
                 2 * k1 * r, 0, panel);

      // --- Ksolve(l) chunk ----------------------------------------------
      ks_nodes[static_cast<std::size_t>(ch)] = gph.add([=] {
        std::vector<ConstMatrixView<T>> lu_p, lu_n;
        std::vector<const index_t*> piv_p;
        std::vector<MatrixView<T>> rhs_p, rhs_n;
        for (index_t k = k0; k < k1; ++k) {
          MatrixView<T> rhs{wdata + 2 * k * r, r2, panel, ldw};
          if (block_pivoted(*kl, pivoted, k)) {
            lu_p.push_back(kl->block(k));
            piv_p.push_back(kl->pivots(k));
            rhs_p.push_back(rhs);
          } else {
            lu_n.push_back(kl->block(k));
            rhs_n.push_back(rhs);
          }
        }
        if (!lu_p.empty()) getrs_batched<T>(lu_p, piv_p, rhs_p, policy);
        if (!lu_n.empty()) getrs_nopivot_batched<T>(lu_n, rhs_n, policy);
      }, "Ksolve", l, ch);
      // Audit: reads the chunk's factored K blocks and their pivots,
      // solves its W rows in place.
      gph.reads(ks_nodes[static_cast<std::size_t>(ch)], kdata, k0, k1);
      gph.reads(ks_nodes[static_cast<std::size_t>(ch)], &kl->ipiv, k0, k1);
      gph.writes(ks_nodes[static_cast<std::size_t>(ch)], wdata, 2 * k0 * r,
                 2 * k1 * r, 0, panel);
      gph.add_edge(w_nodes[static_cast<std::size_t>(ch)],
                   ks_nodes[static_cast<std::size_t>(ch)]);

      // --- prefix(l) chunk ----------------------------------------------
      pf_nodes[static_cast<std::size_t>(ch)] = gph.add([=, &tree] {
        if (uniform) {
          gemm_strided_batched<T>(Op::N, Op::N, s, panel, r, T{-1},
                                  ydata + panel * ldy + 2 * k0 * s, ldy, s,
                                  wdata + 2 * k0 * r, ldw, r, T{1},
                                  ydata + 2 * k0 * s, ldy, s, 2 * qn, policy);
        } else {
          MatrixView<T> yb = ybig;
          std::vector<ConstMatrixView<T>> av(static_cast<std::size_t>(2 * qn)),
              bv(static_cast<std::size_t>(2 * qn));
          std::vector<MatrixView<T>> cv(static_cast<std::size_t>(2 * qn));
          for (index_t t = 2 * k0; t < 2 * k1; ++t) {
            const std::size_t i = static_cast<std::size_t>(t - 2 * k0);
            const index_t nu = ClusterTree::level_begin(l + 1) + t;
            const ClusterNode& cn = tree.node(nu);
            av[i] = ConstMatrixView<T>(
                yb.block(cn.begin, panel, cn.size(), r));
            bv[i] = ConstMatrixView<T>(wdata + t * r, r, panel, ldw);
            cv[i] = yb.block(cn.begin, 0, cn.size(), panel);
          }
          gemm_batched<T>(Op::N, Op::N, T{-1}, av, bv, T{1}, cv, policy);
        }
      }, "prefix", l, ch);
      // Audit: reads the chunk's Y panel columns and solved W rows,
      // accumulates into its Y prefix columns.
      gph.reads(pf_nodes[static_cast<std::size_t>(ch)], ydata, row0, row1,
                panel, panel + r);
      gph.reads(pf_nodes[static_cast<std::size_t>(ch)], wdata, 2 * k0 * r,
                2 * k1 * r, 0, panel);
      gph.writes(pf_nodes[static_cast<std::size_t>(ch)], ydata, row0, row1, 0,
                 panel);
      gph.add_edge(ks_nodes[static_cast<std::size_t>(ch)],
                   pf_nodes[static_cast<std::size_t>(ch)]);
    }

    // Cross-stage / cross-level edges. T and W read Y columns last written
    // by `writers` (the nearest deeper prefix chunks, or the leaf solves),
    // wired by row overlap so a chunk waits only for the writers covering
    // its own rows. Deeper T reads columns above every shallower prefix
    // write, so no anti-dependency edges are needed.
    for (index_t ch = 0; ch < qch; ++ch) {
      const index_t k0 = ch * q / qch;
      const index_t k1 = (ch + 1) * q / qch;
      const ClusterNode& n0 = tree.node(ClusterTree::level_begin(l) + k0);
      const ClusterNode& n1 = tree.node(ClusterTree::level_begin(l) + k1 - 1);
      const index_t row0 = n0.begin;
      const index_t row1 = n1.begin + n1.size();
      const char* const xtag = writers_are_prefix ? "xlevel" : nullptr;
      for (const Span& w : writers)
        if (w.row0 < row1 && row0 < w.row1) {
          gph.add_edge(w.node, t_nodes[static_cast<std::size_t>(ch)], xtag);
          if (panel > 0)
            gph.add_edge(w.node, w_nodes[static_cast<std::size_t>(ch)], xtag);
        }
      // K-LU -> Ksolve is all-to-all within the level (not chunk-to-
      // chunk): the recovery ladder of ANY chunk may reallocate the
      // level-shared ipiv/pivoted vectors that every Ksolve chunk reads.
      if (panel > 0)
        for (const TaskGraph::NodeId klu : klu_nodes)
          gph.add_edge(klu, ks_nodes[static_cast<std::size_t>(ch)]);
    }
    if (panel > 0) {
      writers.clear();
      writers_are_prefix = true;
      for (index_t ch = 0; ch < qch; ++ch) {
        const index_t k0 = ch * q / qch;
        const index_t k1 = (ch + 1) * q / qch;
        const ClusterNode& n0 = tree.node(ClusterTree::level_begin(l) + k0);
        const ClusterNode& n1 = tree.node(ClusterTree::level_begin(l) + k1 - 1);
        writers.push_back({pf_nodes[static_cast<std::size_t>(ch)], n0.begin,
                           n1.begin + n1.size()});
      }
    }
  }

  gph.run();
}

template <typename T>
void FactorEngine<T>::run_solve_batched(const F& f, MatrixView<T> x) {
  const ClusterTree& tree = f.tree_;
  const index_t L = depth(f);
  const BatchPolicy policy = f.opt_.policy;
  const bool pivoted = f.opt_.kform == KForm::kPivoted;
  ConstMatrixView<T> ybig = f.ybig_;
  ConstMatrixView<T> vbig = f.vbig_;
  const T* vdata = f.vbig_.data();
  const T* ydata = f.ybig_.data();
  const index_t ldv = f.vbig_.rows();
  const index_t ldy = f.ybig_.rows();
  const index_t nrhs = x.cols;

  // --- Algorithm 4, line 2: batched leaf solves (blocked TRSM engine:
  // stream mode runs getrs_parallel, batched mode one blocked getrs per
  // pool slot — no reference column-at-a-time solves on this path) --------
  {
    const index_t leaves = tree.num_leaves();
    std::vector<ConstMatrixView<T>> lu(leaves);
    std::vector<const index_t*> piv(leaves);
    std::vector<MatrixView<T>> rhs(leaves);
    for (index_t j = 0; j < leaves; ++j) {
      lu[j] = leaf_lu(f, j);
      piv[j] = leaf_pivots(f, j);
      const ClusterNode& cn = tree.node(tree.leaf(j));
      rhs[j] = x.block(cn.begin, 0, cn.size(), nrhs);
    }
    getrs_batched<T>(lu, piv, rhs, policy);
  }

  // As in the factorization stage: one W workspace for all levels.
  index_t wmax = 0;
  for (index_t l = L - 1; l >= 0; --l) {
    if (f.level_rank_[l + 1] == 0) continue;
    wmax = std::max(wmax, 2 * f.kfac_[l].count * f.level_rank_[l + 1] * nrhs);
  }
  Matrix<T> wbuf(wmax, 1);

  // --- Algorithm 4, lines 3-7: level sweep --------------------------------
  for (index_t l = L - 1; l >= 0; --l) {
    const index_t r = f.level_rank_[l + 1];
    if (r == 0) continue;
    const LevelK& klev = f.kfac_[l];
    const index_t panel = f.col_offset_[l + 1];
    const index_t q = klev.count;
    const index_t c = 2 * q;
    const index_t r2 = klev.r2;
    // The strided launches below are ld-aware (problem i is a row block at
    // element offset i*s or i*2s of the SAME columns, addressed with x.ld),
    // so a submatrix RHS view (x.ld > x.rows) stays on the uniform fast
    // path — it used to silently fall back to per-block gemm_batched.
    const bool uniform = f.level_uniform_[l + 1] != 0;
    const index_t s =
        uniform ? tree.node(ClusterTree::level_begin(l + 1)).size() : 0;

    T* wdata = wbuf.data();
    const index_t ldw = c * r;

    // Line 4: w = (V^{l+1})^H (.) x^{l+1}.
    if (uniform && pivoted) {
      gemm_strided_batched<T>(Op::C, Op::N, r, nrhs, s, T{1},
                              vdata + panel * ldv, ldv, s, x.data, x.ld, s,
                              T{0}, wdata, ldw, r, c, policy);
    } else if (uniform) {
      gemm_strided_batched<T>(Op::C, Op::N, r, nrhs, s, T{1},
                              vdata + s + panel * ldv, ldv, 2 * s,
                              x.data + s, x.ld, 2 * s, T{0}, wdata, ldw,
                              2 * r, q, policy);
      gemm_strided_batched<T>(Op::C, Op::N, r, nrhs, s, T{1},
                              vdata + panel * ldv, ldv, 2 * s, x.data, x.ld,
                              2 * s, T{0}, wdata + r, ldw, 2 * r, q, policy);
    } else {
      std::vector<ConstMatrixView<T>> av(c), bv(c);
      std::vector<MatrixView<T>> cv(c);
      for (index_t k = 0; k < q; ++k) {
        const index_t gamma = ClusterTree::level_begin(l) + k;
        const ClusterNode& ca = tree.node(ClusterTree::left_child(gamma));
        const ClusterNode& cb = tree.node(ClusterTree::right_child(gamma));
        av[2 * k] = vbig.block(ca.begin, panel, ca.size(), r);
        bv[2 * k] = ConstMatrixView<T>(x.block(ca.begin, 0, ca.size(), nrhs));
        av[2 * k + 1] = vbig.block(cb.begin, panel, cb.size(), r);
        bv[2 * k + 1] = ConstMatrixView<T>(x.block(cb.begin, 0, cb.size(), nrhs));
        const index_t row_a = pivoted ? 2 * k * r : (2 * k + 1) * r;
        const index_t row_b = pivoted ? (2 * k + 1) * r : 2 * k * r;
        cv[2 * k] = MatrixView<T>{wdata + row_a, r, nrhs, ldw};
        cv[2 * k + 1] = MatrixView<T>{wdata + row_b, r, nrhs, ldw};
      }
      gemm_batched<T>(Op::C, Op::N, T{1}, av, bv, T{0}, cv, policy);
    }

    // Line 5: batched K solve (recovered-pivoted blocks grouped into their
    // own batched call, as in the factorization stage).
    {
      std::vector<ConstMatrixView<T>> lu_p, lu_n;
      std::vector<const index_t*> piv_p;
      std::vector<MatrixView<T>> rhs_p, rhs_n;
      for (index_t k = 0; k < q; ++k) {
        MatrixView<T> rhs{wdata + 2 * k * r, r2, nrhs, ldw};
        if (block_pivoted(klev, pivoted, k)) {
          lu_p.push_back(klev.block(k));
          piv_p.push_back(klev.pivots(k));
          rhs_p.push_back(rhs);
        } else {
          lu_n.push_back(klev.block(k));
          rhs_n.push_back(rhs);
        }
      }
      if (!lu_p.empty()) getrs_batched<T>(lu_p, piv_p, rhs_p, policy);
      if (!lu_n.empty()) getrs_nopivot_batched<T>(lu_n, rhs_n, policy);
    }

    // Line 6: x^{l+1} -= Y^{l+1} (.) w^{l+1}.
    if (uniform) {
      gemm_strided_batched<T>(Op::N, Op::N, s, nrhs, r, T{-1},
                              ydata + panel * ldy, ldy, s, wdata, ldw, r,
                              T{1}, x.data, x.ld, s, c, policy);
    } else {
      std::vector<ConstMatrixView<T>> av(c), bv(c);
      std::vector<MatrixView<T>> cv(c);
      for (index_t t = 0; t < c; ++t) {
        const index_t nu = ClusterTree::level_begin(l + 1) + t;
        const ClusterNode& cn = tree.node(nu);
        av[t] = ybig.block(cn.begin, panel, cn.size(), r);
        bv[t] = ConstMatrixView<T>(wdata + t * r, r, nrhs, ldw);
        cv[t] = x.block(cn.begin, 0, cn.size(), nrhs);
      }
      gemm_batched<T>(Op::N, Op::N, T{-1}, av, bv, T{1}, cv, policy);
    }
  }
}

#define HODLRX_INSTANTIATE_BATCHED_ENGINE(T)                              \
  template void FactorEngine<T>::run_factor_batched(                     \
      HodlrFactorization<T>&, FactorReport*);                            \
  template void FactorEngine<T>::run_factor_batched_graph(               \
      HodlrFactorization<T>&, FactorReport*);                            \
  template void FactorEngine<T>::run_solve_batched(                      \
      const HodlrFactorization<T>&, MatrixView<T>);

HODLRX_INSTANTIATE_BATCHED_ENGINE(float)
HODLRX_INSTANTIATE_BATCHED_ENGINE(double)
HODLRX_INSTANTIATE_BATCHED_ENGINE(std::complex<float>)
HODLRX_INSTANTIATE_BATCHED_ENGINE(std::complex<double>)

#undef HODLRX_INSTANTIATE_BATCHED_ENGINE

}  // namespace hodlrx::detail
