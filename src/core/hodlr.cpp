#include "core/hodlr.hpp"

#include <complex>
#include <string>
#include <vector>

#include "common/aligned.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/parallel.hpp"
#include "common/task_graph.hpp"
#include "device/backend.hpp"
#include "device/device.hpp"
#include "lowrank/aca.hpp"
#include "lowrank/recompress.hpp"
#include "lowrank/rsvd.hpp"

namespace hodlrx {

namespace {

/// Fold a batched-rsvd sweep's breakdown counters into the report.
/// RsvdBreakdowns counts healed and un-healed problems separately; the
/// report's svd_nonconverged column counts every problem that exhausted the
/// budget (healed or not), svd_recovered the healed subset.
void fold_rsvd_breakdowns(const RsvdBreakdowns& bd, FactorReport* report) {
  if (report == nullptr) return;
  if (bd.svd_nonconverged == 0 && bd.svd_recovered == 0) return;
  report->svd_nonconverged += bd.svd_nonconverged + bd.svd_recovered;
  report->svd_recovered += bd.svd_recovered;
  report->events.push_back(
      "build: batched svd exhausted its sweep budget on " +
      std::to_string(bd.svd_nonconverged + bd.svd_recovered) +
      " problem(s), " + std::to_string(bd.svd_recovered) +
      " recovered by the serial re-run");
}

/// HODLRX_CHECK_FINITE scan of the compressed representation (leaves and
/// low-rank bases) at the end of build.
template <typename T>
void scan_build_finite(HodlrMatrix<T>& h, OnBreakdown policy,
                       FactorReport* report) {
  if (!check_finite_enabled()) return;
  index_t bad = 0;
  for (index_t j = 0; j < h.tree().num_leaves(); ++j)
    bad += count_nonfinite(ConstMatrixView<T>(h.leaf_block(j)));
  for (index_t nu = 1; nu < h.tree().num_nodes(); ++nu) {
    bad += count_nonfinite(ConstMatrixView<T>(h.u(nu)));
    bad += count_nonfinite(ConstMatrixView<T>(h.v(nu)));
  }
  if (bad == 0) return;
  if (report != nullptr) {
    report->nonfinite_values += bad;
    report->events.push_back("build: " + std::to_string(bad) +
                             " non-finite value(s) after compression");
  }
  HODLRX_REQUIRE(policy != OnBreakdown::kThrow,
                 "build: " << bad << " non-finite value(s) after compression");
}

/// Size of every node at `level` when the level is UNIFORM (equal sizes,
/// contiguous index ranges — the layout the strided-batched sweeps need);
/// -1 otherwise.
index_t uniform_level_size(const ClusterTree& tree, index_t level) {
  const index_t begin = ClusterTree::level_begin(level);
  const index_t count = ClusterTree::nodes_at_level(level);
  const index_t s = tree.node(begin).size();
  for (index_t t = 0; t < count; ++t) {
    const ClusterNode& c = tree.node(begin + t);
    if (c.size() != s || c.begin != tree.node(begin).begin + t * s) return -1;
  }
  return s;
}

/// RsvdOptions from the build options (the sketch width comes from
/// max_rank + oversampling; see Compressor::kRsvdBatched).
RsvdOptions rsvd_options(const BuildOptions& opt) {
  HODLRX_REQUIRE(opt.max_rank > 0,
                 "Compressor::kRsvdBatched needs max_rank > 0 (the sketch "
                 "width); got " << opt.max_rank);
  RsvdOptions ropt;
  ropt.rank = opt.max_rank;
  ropt.oversampling = opt.rsvd_oversampling;
  ropt.power_iterations = opt.rsvd_power_iterations;
  ropt.tol = opt.tol;
  return ropt;
}

/// Store one uniform-level sweep's factors: pair j's "upper" block
/// A(I_2j, I_2j+1) row-basis lands on node 2j, its column basis on the
/// sibling; vice versa for the "lower" sweep.
template <typename T>
void store_level_factors(HodlrMatrix<T>& h, index_t begin, index_t q,
                         std::vector<LowRankFactor<T>>&& upper,
                         std::vector<LowRankFactor<T>>&& lower) {
  for (index_t j = 0; j < q; ++j) {
    const index_t nu = begin + 2 * j;   // rows of the upper block
    const index_t sib = nu + 1;         // rows of the lower block
    h.u(nu) = std::move(upper[j].u);
    h.v(sib) = std::move(upper[j].v);
    h.u(sib) = std::move(lower[j].u);
    h.v(nu) = std::move(lower[j].v);
  }
}

/// Batched-rsvd construction from a dense view: every uniform tree level is
/// compressed in TWO strided-batched sweeps (one per sibling side), each
/// sketching all of the level's blocks against ONE shared Gaussian test
/// matrix — the production caller of the batch layer's stride-0 pack-once
/// fast path (see rsvd_strided_batched). Non-uniform levels fall back to an
/// independent rsvd per block.
template <typename T>
HodlrMatrix<T> build_from_dense_rsvd(ConstMatrixView<T> a,
                                     const ClusterTree& tree,
                                     const BuildOptions& opt,
                                     HodlrMatrix<T>&& h,
                                     FactorReport* report) {
  RsvdOptions ropt = rsvd_options(opt);
  RsvdBreakdowns bd;
  ropt.on_breakdown = opt.on_breakdown;
  ropt.breakdowns = &bd;
  for (index_t level = 1; level <= tree.depth(); ++level) {
    const index_t begin = ClusterTree::level_begin(level);
    const index_t count = ClusterTree::nodes_at_level(level);
    const index_t q = count / 2;  // sibling pairs
    const index_t s = uniform_level_size(tree, level);
    if (s > 0) {
      // Sibling pair j occupies rows/cols [2js, (2j+2)s): both the "upper"
      // blocks A(I_2j, I_2j+1) and the "lower" blocks A(I_2j+1, I_2j) are
      // s x s at a constant stride of 2s(ld + 1) — exactly the layout
      // rsvd_strided_batched wants.
      const index_t b0 = tree.node(begin).begin;
      const index_t stride = 2 * s * (a.ld + 1);
      ropt.seed = opt.seed + 2 * level;
      auto upper = rsvd_strided_batched<T>(a.data + b0 + (b0 + s) * a.ld,
                                           a.ld, stride, s, s, q, ropt);
      ropt.seed = opt.seed + 2 * level + 1;
      auto lower = rsvd_strided_batched<T>(a.data + (b0 + s) + b0 * a.ld,
                                           a.ld, stride, s, s, q, ropt);
      store_level_factors<T>(h, begin, q, std::move(upper), std::move(lower));
    } else {
      ropt.seed = opt.seed + 2 * level;
      parallel_for(count, [&](index_t t) {
        const index_t nu = begin + t;
        const index_t sib = ClusterTree::sibling(nu);
        const ClusterNode& rowc = tree.node(nu);
        const ClusterNode& colc = tree.node(sib);
        LowRankFactor<T> f = rsvd<T>(
            a.block(rowc.begin, colc.begin, rowc.size(), colc.size()), ropt);
        h.u(nu) = std::move(f.u);
        h.v(sib) = std::move(f.v);
      });
    }
  }
  parallel_for(tree.num_leaves(), [&](index_t j) {
    const ClusterNode& c = tree.node(tree.leaf(j));
    h.leaf_block(j) = to_matrix(a.block(c.begin, c.begin, c.size(), c.size()));
  });
  fold_rsvd_breakdowns(bd, report);
  scan_build_finite(h, opt.on_breakdown, report);
  return std::move(h);
}

/// Batched-rsvd construction straight from a MatrixGenerator — the
/// generator-backed path that opens the batched sweep to kernel-defined BIE
/// problems (paper Tables 3-5) WITHOUT ever forming the dense matrix. Every
/// uniform level's off-diagonal blocks are materialized tile-by-tile into a
/// strided "device" workspace shared by the pool (one fill_block per tile,
/// tiles written in parallel), then the whole side is compressed by the same
/// batched rsvd sweep the dense path uses. Peak extra memory is ONE level
/// side — at most (n/2)^2 entries at level 1, a quarter of the dense matrix,
/// reused (not reallocated) by every deeper level. Non-uniform levels
/// materialize and compress block-by-block across the pool.
template <typename T>
HodlrMatrix<T> build_from_generator_rsvd(const MatrixGenerator<T>& g,
                                         const ClusterTree& tree,
                                         const BuildOptions& opt,
                                         HodlrMatrix<T>&& h,
                                         FactorReport* report) {
  RsvdOptions ropt = rsvd_options(opt);
  RsvdBreakdowns bd;
  ropt.on_breakdown = opt.on_breakdown;
  ropt.breakdowns = &bd;
  std::vector<T, AlignedAllocator<T>> ws;
  DeviceAllocation ws_mem;
  for (index_t level = 1; level <= tree.depth(); ++level) {
    const index_t begin = ClusterTree::level_begin(level);
    const index_t count = ClusterTree::nodes_at_level(level);
    const index_t q = count / 2;  // sibling pairs
    const index_t s = uniform_level_size(tree, level);
    if (s > 0) {
      const index_t b0 = tree.node(begin).begin;
      const std::size_t need = static_cast<std::size_t>(q) * s * s;
      if (ws.size() < need) {
        ws.resize(need);
        ws_mem = DeviceAllocation(need * sizeof(T));
      }
      // One sweep per sibling side: fill the q tiles of the side in
      // parallel (an H2D upload in the device model), then compress them in
      // one batched launch sequence.
      const auto sweep = [&](bool upper_side) {
        parallel_for(q, [&](index_t j) {
          const index_t row0 = b0 + 2 * j * s + (upper_side ? 0 : s);
          const index_t col0 = b0 + 2 * j * s + (upper_side ? s : 0);
          g.fill_block(row0, col0,
                       MatrixView<T>{ws.data() + j * s * s, s, s, s});
        });
        DeviceContext::global().record_h2d(need * sizeof(T));
        ropt.seed = opt.seed + 2 * level + (upper_side ? 0 : 1);
        return rsvd_strided_batched<T>(ws.data(), s, s * s, s, s, q, ropt);
      };
      auto upper = sweep(/*upper_side=*/true);
      auto lower = sweep(/*upper_side=*/false);
      store_level_factors<T>(h, begin, q, std::move(upper), std::move(lower));
    } else {
      ropt.seed = opt.seed + 2 * level;
      parallel_for(count, [&](index_t t) {
        const index_t nu = begin + t;
        const index_t sib = ClusterTree::sibling(nu);
        const ClusterNode& rowc = tree.node(nu);
        const ClusterNode& colc = tree.node(sib);
        Matrix<T> block(rowc.size(), colc.size());
        g.fill_block(rowc.begin, colc.begin, block);
        LowRankFactor<T> f = rsvd<T>(block.view(), ropt);
        h.u(nu) = std::move(f.u);
        h.v(sib) = std::move(f.v);
      });
    }
  }
  parallel_for(tree.num_leaves(), [&](index_t j) {
    const ClusterNode& c = tree.node(tree.leaf(j));
    h.leaf_block(j) = Matrix<T>(c.size(), c.size());
    g.fill_block(c.begin, c.begin, h.leaf_block(j));
  });
  fold_rsvd_breakdowns(bd, report);
  scan_build_finite(h, opt.on_breakdown, report);
  return std::move(h);
}

/// One uniform level side of a graph-mode compression sweep (level `level`,
/// upper = the A(I_2j, I_2j+1) blocks). Sides are the compress-node
/// granularity: every side gets ONE batched-rsvd node, fed by per-tile
/// materialization nodes on the generator path.
struct SweepSide {
  index_t level = 0;
  index_t begin = 0;  ///< level_begin(level)
  index_t q = 0;      ///< sibling pairs (= tiles per side)
  index_t s = 0;      ///< uniform node size
  bool upper = false;
};

/// Collect the uniform-level sides in level order (upper before lower) —
/// the linear order the double-buffered workspace chain serializes over.
inline std::vector<SweepSide> collect_uniform_sides(const ClusterTree& tree) {
  std::vector<SweepSide> sides;
  for (index_t level = 1; level <= tree.depth(); ++level) {
    const index_t s = uniform_level_size(tree, level);
    if (s <= 0) continue;
    const index_t begin = ClusterTree::level_begin(level);
    const index_t q = ClusterTree::nodes_at_level(level) / 2;
    sides.push_back({level, begin, q, s, true});
    sides.push_back({level, begin, q, s, false});
  }
  return sides;
}

/// Store one side's factors (the per-side half of store_level_factors).
template <typename T>
void store_side_factors(HodlrMatrix<T>& h, const SweepSide& side,
                        std::vector<LowRankFactor<T>>&& fs) {
  for (index_t j = 0; j < side.q; ++j) {
    const index_t nu = side.begin + 2 * j;
    const index_t sib = nu + 1;
    if (side.upper) {
      h.u(nu) = std::move(fs[j].u);
      h.v(sib) = std::move(fs[j].v);
    } else {
      h.u(sib) = std::move(fs[j].u);
      h.v(nu) = std::move(fs[j].v);
    }
  }
}

/// Graph-node version of the non-uniform-level and leaf tasks shared by
/// both builds: add one independent node per off-diagonal block of every
/// non-uniform level and one per leaf diagonal block. `hspace` is the audit
/// identity of the factor storage (see factor_space_docs below): U factors
/// live in column 0 at row nu, V factors in column 1, leaf blocks in column
/// 2 at the leaf index.
template <typename T, typename BlockFn, typename LeafFn>
void add_irregular_nodes(TaskGraph& gph, const ClusterTree& tree,
                         const void* hspace, BlockFn&& block_fn,
                         LeafFn&& leaf_fn) {
  for (index_t level = 1; level <= tree.depth(); ++level) {
    if (uniform_level_size(tree, level) > 0) continue;
    const index_t begin = ClusterTree::level_begin(level);
    const index_t count = ClusterTree::nodes_at_level(level);
    for (index_t t = 0; t < count; ++t) {
      const index_t nu = begin + t;
      const TaskGraph::NodeId id =
          gph.add([block_fn, level, nu] { block_fn(level, nu); }, "block",
                  level, nu);
      gph.writes(id, hspace, nu, nu + 1, 0, 1);
      gph.writes(id, hspace, ClusterTree::sibling(nu),
                 ClusterTree::sibling(nu) + 1, 1, 2);
    }
  }
  for (index_t j = 0; j < tree.num_leaves(); ++j) {
    const TaskGraph::NodeId id = gph.add([leaf_fn, j] { leaf_fn(j); }, "leaf", j);
    gph.writes(id, hspace, j, j + 1, 2, 3);
  }
}

/// Declare one compress node's factor-store writes: side `side` moves U/V
/// factors into h for each of its q sibling pairs. Upper sides write U at
/// the even node of the pair and V at the odd one; lower sides the reverse —
/// disjoint per-element rectangles, so the auditor proves the two sides of a
/// level (and all levels) may run unordered.
inline void declare_side_stores(TaskGraph& gph, TaskGraph::NodeId id,
                                const void* hspace, const SweepSide& side) {
  for (index_t j = 0; j < side.q; ++j) {
    const index_t nu = side.begin + 2 * j;
    const index_t sib = nu + 1;
    const index_t u_at = side.upper ? nu : sib;
    const index_t v_at = side.upper ? sib : nu;
    gph.writes(id, hspace, u_at, u_at + 1, 0, 1);
    gph.writes(id, hspace, v_at, v_at + 1, 1, 2);
  }
}

/// Dependency-graph twin of build_from_dense_rsvd: every uniform level side
/// is ONE compress node reading the dense view directly, so all sides (and
/// the leaf copies) run concurrently — level L+1's compression overlaps
/// level L's batched QR/SVD drain instead of waiting at a level barrier.
template <typename T>
HodlrMatrix<T> build_from_dense_rsvd_graph(ConstMatrixView<T> a,
                                           const ClusterTree& tree,
                                           const BuildOptions& opt,
                                           HodlrMatrix<T>&& h,
                                           FactorReport* report) {
  const RsvdOptions base = rsvd_options(opt);
  const std::vector<SweepSide> sides = collect_uniform_sides(tree);
  // Per-side breakdown counters: compress nodes run concurrently, so each
  // writes its own slot and the slots are merged after the graph drains.
  std::vector<RsvdBreakdowns> bds(sides.size() + 1);
  TaskGraph gph;
  for (std::size_t k = 0; k < sides.size(); ++k) {
    const SweepSide side = sides[k];
    const TaskGraph::NodeId id = gph.add([&, side, k] {
      const index_t b0 = tree.node(side.begin).begin;
      const index_t stride = 2 * side.s * (a.ld + 1);
      const T* base_ptr = side.upper
                              ? a.data + b0 + (b0 + side.s) * a.ld
                              : a.data + (b0 + side.s) + b0 * a.ld;
      RsvdOptions ropt = base;
      ropt.on_breakdown = opt.on_breakdown;
      ropt.breakdowns = &bds[k];
      ropt.seed = opt.seed + 2 * side.level + (side.upper ? 0 : 1);
      auto fs = rsvd_strided_batched<T>(base_ptr, a.ld, stride, side.s,
                                        side.s, side.q, ropt);
      store_side_factors<T>(h, side, std::move(fs));
    }, "compress", side.level, side.upper ? 0 : 1);
    declare_side_stores(gph, id, &h, side);
  }
  add_irregular_nodes<T>(
      gph, tree, &h,
      [&](index_t level, index_t nu) {
        const index_t sib = ClusterTree::sibling(nu);
        const ClusterNode& rowc = tree.node(nu);
        const ClusterNode& colc = tree.node(sib);
        RsvdOptions ropt = base;
        ropt.on_breakdown = opt.on_breakdown;
        ropt.seed = opt.seed + 2 * level;
        LowRankFactor<T> f = rsvd<T>(
            a.block(rowc.begin, colc.begin, rowc.size(), colc.size()), ropt);
        h.u(nu) = std::move(f.u);
        h.v(sib) = std::move(f.v);
      },
      [&](index_t j) {
        const ClusterNode& c = tree.node(tree.leaf(j));
        h.leaf_block(j) =
            to_matrix(a.block(c.begin, c.begin, c.size(), c.size()));
      });
  gph.run();
  RsvdBreakdowns bd;
  for (const RsvdBreakdowns& b : bds) {
    bd.svd_nonconverged += b.svd_nonconverged;
    bd.svd_recovered += b.svd_recovered;
  }
  fold_rsvd_breakdowns(bd, report);
  scan_build_finite(h, opt.on_breakdown, report);
  return std::move(h);
}

/// Dependency-graph twin of build_from_generator_rsvd. Nodes: one tile-
/// materialization node per sibling pair (fills tile j of a side into the
/// side's workspace slot) and one batched-rsvd compress node per side, plus
/// the independent non-uniform/leaf nodes. Edges: every tile feeds its
/// side's compress node, and the workspace is DOUBLE-BUFFERED (side k uses
/// slot k%2, so side k's tiles wait on side k-2's compress) — level L+1 can
/// materialize and compress while level L's batched QR/SVD drains, at the
/// cost of two live level sides instead of one (peak 2x the levels-mode
/// workspace; still at most half the dense matrix).
template <typename T>
HodlrMatrix<T> build_from_generator_rsvd_graph(const MatrixGenerator<T>& g,
                                               const ClusterTree& tree,
                                               const BuildOptions& opt,
                                               HodlrMatrix<T>&& h,
                                               FactorReport* report) {
  const RsvdOptions base = rsvd_options(opt);
  const std::vector<SweepSide> sides = collect_uniform_sides(tree);
  std::vector<RsvdBreakdowns> bds(sides.size() + 1);

  std::size_t slot_need[2] = {0, 0};
  for (std::size_t k = 0; k < sides.size(); ++k)
    slot_need[k % 2] =
        std::max(slot_need[k % 2], static_cast<std::size_t>(sides[k].q) *
                                       sides[k].s * sides[k].s);
  std::vector<T, AlignedAllocator<T>> ws[2];
  DeviceAllocation ws_mem[2];
  for (int slot = 0; slot < 2; ++slot)
    if (slot_need[slot] > 0) {
      ws[slot].resize(slot_need[slot]);
      ws_mem[slot] = DeviceAllocation(slot_need[slot] * sizeof(T));
    }

  TaskGraph gph;
  std::vector<TaskGraph::NodeId> compress_node(sides.size());
  for (std::size_t k = 0; k < sides.size(); ++k) {
    const SweepSide side = sides[k];
    T* wdata = ws[k % 2].data();
    compress_node[k] = gph.add([&, side, k, wdata] {
      DeviceContext::global().record_h2d(static_cast<std::size_t>(side.q) *
                                         side.s * side.s * sizeof(T));
      RsvdOptions ropt = base;
      ropt.on_breakdown = opt.on_breakdown;
      ropt.breakdowns = &bds[k];
      ropt.seed = opt.seed + 2 * side.level + (side.upper ? 0 : 1);
      auto fs = rsvd_strided_batched<T>(wdata, side.s, side.s * side.s,
                                        side.s, side.s, side.q, ropt);
      store_side_factors<T>(h, side, std::move(fs));
    }, "compress", side.level, side.upper ? 0 : 1);
    // Audit: the compress node reads the whole staged slot (flattened
    // element offsets; the slot base is the space identity) and stores the
    // side's factors.
    gph.reads(compress_node[k], wdata, 0, side.q * side.s * side.s);
    declare_side_stores(gph, compress_node[k], &h, side);
  }
  for (std::size_t k = 0; k < sides.size(); ++k) {
    const SweepSide side = sides[k];
    const index_t b0 = tree.node(side.begin).begin;
    T* wdata = ws[k % 2].data();
    for (index_t j = 0; j < side.q; ++j) {
      const TaskGraph::NodeId fill = gph.add([&, side, b0, wdata, j] {
        const index_t row0 = b0 + 2 * j * side.s + (side.upper ? 0 : side.s);
        const index_t col0 = b0 + 2 * j * side.s + (side.upper ? side.s : 0);
        g.fill_block(row0, col0,
                     MatrixView<T>{wdata + j * side.s * side.s, side.s,
                                   side.s, side.s});
      }, "tile-fill", static_cast<index_t>(k), j);
      // Audit: tile j overwrites its slice of the shared slot. The recycle
      // edges below are exactly what orders these writes against the
      // previous tenant's compress read — the auditor proves the
      // double-buffer chain is complete.
      gph.writes(fill, wdata, j * side.s * side.s, (j + 1) * side.s * side.s);
      // Workspace recycling: this side's tiles overwrite the slot the
      // side-before-last compressed out of.
      if (k >= 2) gph.add_edge(compress_node[k - 2], fill, "ws-recycle");
      gph.add_edge(fill, compress_node[k]);
    }
  }
  add_irregular_nodes<T>(
      gph, tree, &h,
      [&](index_t level, index_t nu) {
        const index_t sib = ClusterTree::sibling(nu);
        const ClusterNode& rowc = tree.node(nu);
        const ClusterNode& colc = tree.node(sib);
        Matrix<T> block(rowc.size(), colc.size());
        g.fill_block(rowc.begin, colc.begin, block);
        RsvdOptions ropt = base;
        ropt.on_breakdown = opt.on_breakdown;
        ropt.seed = opt.seed + 2 * level;
        LowRankFactor<T> f = rsvd<T>(block.view(), ropt);
        h.u(nu) = std::move(f.u);
        h.v(sib) = std::move(f.v);
      },
      [&](index_t j) {
        const ClusterNode& c = tree.node(tree.leaf(j));
        h.leaf_block(j) = Matrix<T>(c.size(), c.size());
        g.fill_block(c.begin, c.begin, h.leaf_block(j));
      });
  gph.run();
  RsvdBreakdowns bd;
  for (const RsvdBreakdowns& b : bds) {
    bd.svd_nonconverged += b.svd_nonconverged;
    bd.svd_recovered += b.svd_recovered;
  }
  fold_rsvd_breakdowns(bd, report);
  scan_build_finite(h, opt.on_breakdown, report);
  return std::move(h);
}

/// Stream-issued twin of build_from_generator_rsvd for asynchronous
/// backends. Each uniform side's tiles are filled on the host pool, then the
/// side's whole batched-rsvd compression is LAUNCHED onto one of two
/// alternating streams and the builder moves straight on to the next side —
/// so when a drain runs, the two streams' queued compressions execute
/// concurrently (level L+1's compression overlaps level L's drain) instead
/// of serializing at a level barrier. The workspace is double-buffered like
/// the graph build: an Event recorded after side k's compression gates the
/// refill of its slot by side k+2 — the ws-recycle edge of the graph build,
/// expressed as a stream event. Workspace lives in DeviceBuffers (real
/// backend-owned memory), so an allocation failure takes the device.alloc
/// drain-and-retry recovery rung.
template <typename T>
HodlrMatrix<T> build_from_generator_rsvd_async(const MatrixGenerator<T>& g,
                                               const ClusterTree& tree,
                                               const BuildOptions& opt,
                                               HodlrMatrix<T>&& h,
                                               FactorReport* report) {
  const RsvdOptions base = rsvd_options(opt);
  const std::vector<SweepSide> sides = collect_uniform_sides(tree);
  std::vector<RsvdBreakdowns> bds(sides.size() + 1);
  // Deferred compressions write their factors here (one slot per side, no
  // sharing); the factors are moved into h only after the streams drain.
  std::vector<std::vector<LowRankFactor<T>>> results(sides.size());

  std::size_t slot_need[2] = {0, 0};
  for (std::size_t k = 0; k < sides.size(); ++k)
    slot_need[k % 2] =
        std::max(slot_need[k % 2], static_cast<std::size_t>(sides[k].q) *
                                       sides[k].s * sides[k].s);
  DeviceBuffer ws[2];
  for (int slot = 0; slot < 2; ++slot)
    if (slot_need[slot] > 0) ws[slot] = DeviceBuffer(slot_need[slot] * sizeof(T));

  {
    Stream streams[2];
    std::vector<Event> done(sides.size());
    for (std::size_t k = 0; k < sides.size(); ++k) {
      const SweepSide side = sides[k];
      T* wdata = ws[k % 2].template as<T>();
      const std::size_t need =
          static_cast<std::size_t>(side.q) * side.s * side.s;
      // Slot recycle gate: the side-before-last compressed out of this slot;
      // its event must complete before the slot is overwritten. The
      // synchronize drains BOTH streams' queues up to that point (the
      // calling thread helps), which is where the queued compressions
      // actually overlap.
      if (k >= 2) done[k - 2].synchronize();
      parallel_for(side.q, [&](index_t j) {
        const index_t b0 = tree.node(side.begin).begin;
        const index_t row0 = b0 + 2 * j * side.s + (side.upper ? 0 : side.s);
        const index_t col0 = b0 + 2 * j * side.s + (side.upper ? side.s : 0);
        g.fill_block(row0, col0,
                     MatrixView<T>{wdata + j * side.s * side.s, side.s,
                                   side.s, side.s});
      });
      DeviceContext::global().record_h2d(need * sizeof(T));
      streams[k % 2].launch("compress-side", [&, side, k, wdata] {
        RsvdOptions ropt = base;
        ropt.on_breakdown = opt.on_breakdown;
        ropt.breakdowns = &bds[k];
        ropt.seed = opt.seed + 2 * side.level + (side.upper ? 0 : 1);
        results[k] = rsvd_strided_batched<T>(wdata, side.s, side.s * side.s,
                                             side.s, side.s, side.q, ropt);
      });
      streams[k % 2].record(done[k]);
    }
    streams[0].synchronize();
    streams[1].synchronize();
    for (std::size_t k = 0; k < sides.size(); ++k)
      store_side_factors<T>(h, sides[k], std::move(results[k]));
  }

  RsvdOptions ropt = base;
  ropt.on_breakdown = opt.on_breakdown;
  ropt.breakdowns = &bds[sides.size()];
  for (index_t level = 1; level <= tree.depth(); ++level) {
    if (uniform_level_size(tree, level) > 0) continue;
    const index_t begin = ClusterTree::level_begin(level);
    const index_t count = ClusterTree::nodes_at_level(level);
    ropt.seed = opt.seed + 2 * level;
    parallel_for(count, [&](index_t t) {
      const index_t nu = begin + t;
      const index_t sib = ClusterTree::sibling(nu);
      const ClusterNode& rowc = tree.node(nu);
      const ClusterNode& colc = tree.node(sib);
      Matrix<T> block(rowc.size(), colc.size());
      g.fill_block(rowc.begin, colc.begin, block);
      LowRankFactor<T> f = rsvd<T>(block.view(), ropt);
      h.u(nu) = std::move(f.u);
      h.v(sib) = std::move(f.v);
    });
  }
  parallel_for(tree.num_leaves(), [&](index_t j) {
    const ClusterNode& c = tree.node(tree.leaf(j));
    h.leaf_block(j) = Matrix<T>(c.size(), c.size());
    g.fill_block(c.begin, c.begin, h.leaf_block(j));
  });
  RsvdBreakdowns bd;
  for (const RsvdBreakdowns& b : bds) {
    bd.svd_nonconverged += b.svd_nonconverged;
    bd.svd_recovered += b.svd_recovered;
  }
  fold_rsvd_breakdowns(bd, report);
  scan_build_finite(h, opt.on_breakdown, report);
  return std::move(h);
}

}  // namespace

template <typename T>
HodlrMatrix<T> HodlrMatrix<T>::build(const MatrixGenerator<T>& g,
                                     const ClusterTree& tree,
                                     const BuildOptions& opt,
                                     FactorReport* report) {
  HODLRX_REQUIRE(g.rows() == tree.n() && g.cols() == tree.n(),
                 "build: generator is " << g.rows() << "x" << g.cols()
                                        << " but tree has n=" << tree.n());
  HodlrMatrix<T> h;
  h.tree_ = tree;
  h.u_.resize(tree.num_nodes());
  h.v_.resize(tree.num_nodes());
  h.leaf_d_.resize(tree.num_leaves());

  if (opt.compressor == Compressor::kRsvdBatched) {
    if (sched_mode() == SchedMode::kGraph)
      return build_from_generator_rsvd_graph<T>(g, tree, opt, std::move(h),
                                                report);
    if (backend().asynchronous())
      return build_from_generator_rsvd_async<T>(g, tree, opt, std::move(h),
                                                report);
    return build_from_generator_rsvd<T>(g, tree, opt, std::move(h), report);
  }

  AcaOptions aopt;
  aopt.tol = opt.tol;
  aopt.max_rank = opt.max_rank;
  aopt.rook_iterations = opt.rook_iterations;
  aopt.seed = opt.seed;

  // Task list: every non-root node `nu` owns the block (I_nu, I_sib(nu));
  // leaves additionally own their diagonal block. All tasks independent.
  // Per-block recompression is DEFERRED on uniform levels: those levels are
  // re-truncated afterwards in one batched sweep per level instead of one
  // pool task per block (the same machinery as the rsvd compression sweep).
  std::vector<char> level_batched(tree.depth() + 1, 0);
  if (opt.recompress)
    for (index_t level = 1; level <= tree.depth(); ++level)
      level_batched[level] = uniform_level_size(tree, level) > 0 ? 1 : 0;
  const index_t first = 1;
  const index_t num_offdiag = tree.num_nodes() - 1;
  const index_t num_leaves = tree.num_leaves();
  std::vector<std::string> errors(num_offdiag + num_leaves);
  // Per-task stall flags, resolved serially after the loop (the recovery
  // ladder re-compresses stalled blocks; see below).
  std::vector<char> stalled(num_offdiag, 0);
  parallel_for(num_offdiag + num_leaves, [&](index_t task) {
    try {
      if (task < num_offdiag) {
        const index_t nu = first + task;
        const index_t sib = ClusterTree::sibling(nu);
        const ClusterNode& rowc = tree.node(nu);
        const ClusterNode& colc = tree.node(sib);
        AcaResult<T> res = aca(g, rowc.begin, colc.begin, rowc.size(),
                               colc.size(), aopt);
        if (opt.on_breakdown == OnBreakdown::kThrow)
          HODLRX_REQUIRE(res.converged,
                         "ACA did not converge on block (" << nu << ", " << sib
                                                           << ")");
        if (!res.converged) stalled[task] = 1;
        if (res.converged && opt.recompress && res.factor.rank() > 0 &&
            !level_batched[ClusterTree::level_of(nu)])
          recompress(res.factor, static_cast<real_t<T>>(opt.tol),
                     opt.max_rank);
        // Rows of the block live on nu -> U_nu; columns on sib -> V_sib.
        h.u_[nu] = std::move(res.factor.u);
        h.v_[sib] = std::move(res.factor.v);
      } else {
        const index_t j = task - num_offdiag;
        const ClusterNode& c = tree.node(tree.leaf(j));
        h.leaf_d_[j] = Matrix<T>(c.size(), c.size());
        g.fill_block(c.begin, c.begin, h.leaf_d_[j]);
      }
    } catch (const std::exception& e) {
      errors[task] = e.what();
    }
  });
  for (const auto& e : errors)
    HODLRX_REQUIRE(e.empty(), "HodlrMatrix::build failed: " << e);
  // Recovery ladder for stalled / non-converged ACA blocks: materialize the
  // block (it never formed during the cross search) and re-compress it
  // through the batched rsvd pipeline, so a stall in the entry-sampling
  // compressor cannot poison the representation. The sketch starts near the
  // rank ACA achieved and doubles until the truncated rank falls below the
  // sketch width (the tol tail was captured) — a full min(m, n)-wide sketch
  // on a large block would be an O(n^3) retry. Under kReport the
  // achieved-rank factor is kept and only recorded.
  RsvdBreakdowns bd;
  for (index_t task = 0; task < num_offdiag; ++task) {
    if (!stalled[task]) continue;
    const index_t nu = first + task;
    const index_t sib = ClusterTree::sibling(nu);
    const ClusterNode& rowc = tree.node(nu);
    const ClusterNode& colc = tree.node(sib);
    if (report != nullptr) {
      ++report->aca_stalls;
      report->events.push_back(
          "build: aca stalled on block (" + std::to_string(nu) + ", " +
          std::to_string(sib) + ") at rank " +
          std::to_string(h.u_[nu].cols()));
    }
    if (opt.on_breakdown != OnBreakdown::kRecover) continue;
    Matrix<T> block(rowc.size(), colc.size());
    g.fill_block(rowc.begin, colc.begin, block);
    const index_t minmn = std::min(rowc.size(), colc.size());
    index_t sketch =
        opt.max_rank > 0
            ? std::min<index_t>(opt.max_rank, minmn)
            : std::min<index_t>(
                  minmn, std::max<index_t>(64, 2 * h.u_[nu].cols()));
    RsvdOptions ropt;
    ropt.oversampling = opt.rsvd_oversampling;
    ropt.power_iterations = std::max(opt.rsvd_power_iterations, 2);
    ropt.tol = opt.tol;
    ropt.seed = opt.seed + static_cast<std::uint64_t>(nu);
    ropt.on_breakdown = opt.on_breakdown;
    ropt.breakdowns = &bd;
    for (;;) {
      ropt.rank = sketch;
      auto fs = rsvd_strided_batched<T>(block.data(), block.rows(), 0,
                                        block.rows(), block.cols(), 1, ropt);
      const bool captured = fs[0].u.cols() < sketch;  // tol tail reached
      h.u_[nu] = std::move(fs[0].u);
      h.v_[sib] = std::move(fs[0].v);
      if (opt.max_rank > 0 || captured || sketch >= minmn) break;
      sketch = std::min<index_t>(minmn, 2 * sketch);
    }
    fault_stats::detail::add_recovered(fault::Site::kAcaStall);
    if (report != nullptr) {
      ++report->aca_retries;
      report->events.push_back(
          "build: block (" + std::to_string(nu) + ", " + std::to_string(sib) +
          ") re-compressed via rsvd to rank " + std::to_string(h.u_[nu].cols()));
    }
  }
  fold_rsvd_breakdowns(bd, report);
  // Batched re-truncation of every uniform level: all of the level's s x s
  // blocks (both sibling sides) share one recompress_batched sweep.
  for (index_t level = 1; level <= tree.depth(); ++level) {
    if (!level_batched[level]) continue;
    const index_t begin = ClusterTree::level_begin(level);
    const index_t count = ClusterTree::nodes_at_level(level);
    std::vector<LowRankFactor<T>> fs(static_cast<std::size_t>(count));
    for (index_t t = 0; t < count; ++t) {
      const index_t nu = begin + t;
      fs[static_cast<std::size_t>(t)].u = std::move(h.u_[nu]);
      fs[static_cast<std::size_t>(t)].v =
          std::move(h.v_[ClusterTree::sibling(nu)]);
    }
    recompress_batched<T>(fs, static_cast<real_t<T>>(opt.tol), opt.max_rank);
    for (index_t t = 0; t < count; ++t) {
      const index_t nu = begin + t;
      h.u_[nu] = std::move(fs[static_cast<std::size_t>(t)].u);
      h.v_[ClusterTree::sibling(nu)] = std::move(fs[static_cast<std::size_t>(t)].v);
    }
  }
  scan_build_finite(h, opt.on_breakdown, report);
  return h;
}

template <typename T>
HodlrMatrix<T> HodlrMatrix<T>::build_from_dense(ConstMatrixView<T> a,
                                                const ClusterTree& tree,
                                                const BuildOptions& opt,
                                                FactorReport* report) {
  HODLRX_REQUIRE(a.rows == tree.n() && a.cols == tree.n(),
                 "build_from_dense: matrix is " << a.rows << "x" << a.cols
                                                << " but tree has n="
                                                << tree.n());
  if (opt.compressor == Compressor::kRsvdBatched) {
    HodlrMatrix<T> h;
    h.tree_ = tree;
    h.u_.resize(tree.num_nodes());
    h.v_.resize(tree.num_nodes());
    h.leaf_d_.resize(tree.num_leaves());
    if (sched_mode() == SchedMode::kGraph)
      return build_from_dense_rsvd_graph<T>(a, tree, opt, std::move(h),
                                            report);
    return build_from_dense_rsvd<T>(a, tree, opt, std::move(h), report);
  }
  DenseGenerator<T> g(to_matrix(a));
  return build(g, tree, opt, report);
}

template <typename T>
std::vector<index_t> HodlrMatrix<T>::rank_ladder() const {
  std::vector<index_t> ladder(tree_.depth(), 0);
  for (index_t level = 1; level <= tree_.depth(); ++level)
    for (index_t i = ClusterTree::level_begin(level);
         i < ClusterTree::level_begin(level + 1); ++i)
      ladder[level - 1] = std::max(ladder[level - 1], rank(i));
  return ladder;
}

template <typename T>
index_t HodlrMatrix<T>::max_rank() const {
  index_t r = 0;
  for (index_t i = 1; i < tree_.num_nodes(); ++i) r = std::max(r, rank(i));
  return r;
}

template <typename T>
void HodlrMatrix<T>::apply(ConstMatrixView<T> x, MatrixView<T> y) const {
  HODLRX_REQUIRE(x.rows == n() && y.rows == n() && x.cols == y.cols,
                 "apply: shape mismatch");
  // y = D x on the leaves (disjoint row ranges -> parallel).
  parallel_for(tree_.num_leaves(), [&](index_t j) {
    const ClusterNode& c = tree_.node(tree_.leaf(j));
    gemm(Op::N, Op::N, T{1}, leaf_d_[j],
         x.block(c.begin, 0, c.size(), x.cols), T{0},
         y.block(c.begin, 0, c.size(), y.cols));
  });
  // Off-diagonal contributions, one level at a time (row ranges within a
  // level are disjoint, so each level parallelizes cleanly).
  for (index_t level = 1; level <= tree_.depth(); ++level) {
    const index_t begin = ClusterTree::level_begin(level);
    const index_t count = ClusterTree::nodes_at_level(level);
    parallel_for(count, [&](index_t k) {
      const index_t nu = begin + k;
      const index_t sib = ClusterTree::sibling(nu);
      if (rank(nu) == 0) return;
      const ClusterNode& rowc = tree_.node(nu);
      const ClusterNode& colc = tree_.node(sib);
      // y(I_nu) += U_nu (V_sib^H x(I_sib)).
      Matrix<T> tmp(rank(nu), x.cols);
      gemm(Op::C, Op::N, T{1}, ConstMatrixView<T>(v_[sib]),
           x.block(colc.begin, 0, colc.size(), x.cols), T{0}, tmp.view());
      gemm(Op::N, Op::N, T{1}, ConstMatrixView<T>(u_[nu]),
           ConstMatrixView<T>(tmp), T{1},
           y.block(rowc.begin, 0, rowc.size(), y.cols));
    });
  }
}

template <typename T>
Matrix<T> HodlrMatrix<T>::to_dense() const {
  Matrix<T> a(n(), n());
  for (index_t j = 0; j < tree_.num_leaves(); ++j) {
    const ClusterNode& c = tree_.node(tree_.leaf(j));
    copy(ConstMatrixView<T>(leaf_d_[j]),
         a.block(c.begin, c.begin, c.size(), c.size()));
  }
  for (index_t nu = 1; nu < tree_.num_nodes(); ++nu) {
    if (rank(nu) == 0) continue;
    const index_t sib = ClusterTree::sibling(nu);
    const ClusterNode& rowc = tree_.node(nu);
    const ClusterNode& colc = tree_.node(sib);
    gemm(Op::N, Op::C, T{1}, ConstMatrixView<T>(u_[nu]),
         ConstMatrixView<T>(v_[sib]), T{0},
         a.block(rowc.begin, colc.begin, rowc.size(), colc.size()));
  }
  return a;
}

template <typename T>
std::size_t HodlrMatrix<T>::bytes() const {
  std::size_t b = 0;
  for (const auto& d : leaf_d_) b += d.bytes();
  for (const auto& m : u_) b += m.bytes();
  for (const auto& m : v_) b += m.bytes();
  return b;
}

template class HodlrMatrix<float>;
template class HodlrMatrix<double>;
template class HodlrMatrix<std::complex<float>>;
template class HodlrMatrix<std::complex<double>>;

}  // namespace hodlrx
