#pragma once

#include <array>
#include <vector>

#include "common/config.hpp"
#include "common/error.hpp"

/// \file points.hpp
/// A set of N points in R^dim, stored point-major (coordinates of point i
/// are xyz[dim*i .. dim*i+dim)). Geometry is always double precision even
/// when the matrix scalar is single/complex.

namespace hodlrx {

struct PointSet {
  index_t dim = 0;
  std::vector<double> xyz;  ///< size dim * n

  PointSet() = default;
  PointSet(index_t dimension, index_t n) : dim(dimension), xyz(dimension * n) {}

  index_t size() const { return dim == 0 ? 0 : static_cast<index_t>(xyz.size()) / dim; }
  double* point(index_t i) { return xyz.data() + dim * i; }
  const double* point(index_t i) const { return xyz.data() + dim * i; }
  double coord(index_t i, index_t d) const { return xyz[dim * i + d]; }
  double& coord(index_t i, index_t d) { return xyz[dim * i + d]; }

  /// Squared Euclidean distance between points i and j.
  double dist2(index_t i, index_t j) const {
    double s = 0;
    for (index_t d = 0; d < dim; ++d) {
      const double t = coord(i, d) - coord(j, d);
      s += t * t;
    }
    return s;
  }

  /// Reorder points by a permutation: out.point(i) = in.point(perm[i]).
  PointSet permuted(const std::vector<index_t>& perm) const {
    PointSet out(dim, size());
    HODLRX_REQUIRE(static_cast<index_t>(perm.size()) == size(),
                   "permuted: bad permutation size");
    for (index_t i = 0; i < size(); ++i)
      for (index_t d = 0; d < dim; ++d) out.coord(i, d) = coord(perm[i], d);
    return out;
  }
};

}  // namespace hodlrx
