#pragma once

#include <vector>

#include "common/config.hpp"
#include "tree/points.hpp"

/// \file cluster_tree.hpp
/// The cluster tree of Definition 1: a perfect binary tree over consecutive
/// index ranges of {0, ..., N-1}. Level l holds 2^l nodes; the two children
/// of a node partition its range. Heap numbering: root is node 0, children
/// of node i are 2i+1 and 2i+2.

namespace hodlrx {

struct ClusterNode {
  index_t begin = 0;  ///< first index (inclusive)
  index_t end = 0;    ///< one past the last index
  index_t size() const { return end - begin; }
};

class ClusterTree {
 public:
  /// Build with exactly L levels of splits (2^L leaves). Requires n >= 2^L.
  static ClusterTree with_depth(index_t n, index_t depth);

  /// Build so that leaves have at most `leaf_size` indices
  /// (depth = ceil(log2(n / leaf_size))).
  static ClusterTree uniform(index_t n, index_t leaf_size);

  /// Build from explicit heap-ordered ranges (2^(depth+1) - 1 nodes);
  /// validates the Definition 1 invariants.
  static ClusterTree from_ranges(std::vector<ClusterNode> nodes, index_t depth);

  index_t n() const { return n_; }
  index_t depth() const { return depth_; }  ///< L; levels are 0..L
  index_t num_nodes() const { return static_cast<index_t>(nodes_.size()); }
  index_t num_leaves() const { return index_t{1} << depth_; }

  const ClusterNode& node(index_t i) const { return nodes_[i]; }

  // Heap-navigation helpers.
  static index_t parent(index_t i) { return (i - 1) / 2; }
  static index_t left_child(index_t i) { return 2 * i + 1; }
  static index_t right_child(index_t i) { return 2 * i + 2; }
  static index_t sibling(index_t i) { return (i % 2 == 1) ? i + 1 : i - 1; }
  static index_t level_begin(index_t level) { return (index_t{1} << level) - 1; }
  static index_t nodes_at_level(index_t level) { return index_t{1} << level; }
  static index_t level_of(index_t i) {
    index_t l = 0;
    while (level_begin(l + 1) <= i) ++l;
    return l;
  }
  bool is_leaf(index_t i) const { return i >= level_begin(depth_); }
  /// Node id of the j-th leaf (left to right).
  index_t leaf(index_t j) const { return level_begin(depth_) + j; }

  index_t max_leaf_size() const;
  index_t min_leaf_size() const;

  /// Check the Definition 1 invariants; throws hodlrx::Error on violation.
  void validate() const;

 private:
  index_t n_ = 0;
  index_t depth_ = 0;
  std::vector<ClusterNode> nodes_;
};

/// A cluster tree built over geometric points, together with the point
/// permutation that makes every node's points consecutive.
struct GeometricTree {
  ClusterTree tree;
  std::vector<index_t> perm;  ///< sorted_index -> original_index
  PointSet points;            ///< permuted copy (tree order)
};

/// Recursive median bisection along the widest coordinate (a k-d tree in the
/// sense of Sec. II-A). `depth < 0` chooses depth from `leaf_size`.
GeometricTree build_kd_tree(const PointSet& pts, index_t leaf_size,
                            index_t depth = -1);

}  // namespace hodlrx
