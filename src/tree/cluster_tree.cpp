#include "tree/cluster_tree.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace hodlrx {

ClusterTree ClusterTree::with_depth(index_t n, index_t depth) {
  HODLRX_REQUIRE(depth >= 0, "with_depth: negative depth");
  HODLRX_REQUIRE(n >= (index_t{1} << depth),
                 "with_depth: n=" << n << " too small for depth " << depth);
  ClusterTree t;
  t.n_ = n;
  t.depth_ = depth;
  t.nodes_.resize((index_t{2} << depth) - 1);
  t.nodes_[0] = {0, n};
  for (index_t i = 0; i < level_begin(depth); ++i) {
    const ClusterNode& nd = t.nodes_[i];
    const index_t mid = nd.begin + nd.size() / 2;
    t.nodes_[left_child(i)] = {nd.begin, mid};
    t.nodes_[right_child(i)] = {mid, nd.end};
  }
  return t;
}

ClusterTree ClusterTree::uniform(index_t n, index_t leaf_size) {
  HODLRX_REQUIRE(n > 0 && leaf_size > 0, "uniform: bad arguments");
  index_t depth = 0;
  while ((n + (index_t{1} << depth) - 1) / (index_t{1} << depth) > leaf_size)
    ++depth;
  // Never split below one point per leaf.
  while ((index_t{1} << depth) > n) --depth;
  return with_depth(n, depth);
}

ClusterTree ClusterTree::from_ranges(std::vector<ClusterNode> nodes,
                                     index_t depth) {
  ClusterTree t;
  t.depth_ = depth;
  HODLRX_REQUIRE(nodes.size() == static_cast<std::size_t>((index_t{2} << depth) - 1),
                 "from_ranges: wrong node count for depth " << depth);
  t.n_ = nodes.empty() ? 0 : nodes[0].size();
  t.nodes_ = std::move(nodes);
  t.validate();
  return t;
}

index_t ClusterTree::max_leaf_size() const {
  index_t m = 0;
  for (index_t j = 0; j < num_leaves(); ++j)
    m = std::max(m, node(leaf(j)).size());
  return m;
}

index_t ClusterTree::min_leaf_size() const {
  index_t m = n_;
  for (index_t j = 0; j < num_leaves(); ++j)
    m = std::min(m, node(leaf(j)).size());
  return m;
}

void ClusterTree::validate() const {
  HODLRX_REQUIRE(nodes_.size() == static_cast<std::size_t>((index_t{2} << depth_) - 1),
                 "validate: wrong node count");
  HODLRX_REQUIRE(nodes_[0].begin == 0 && nodes_[0].end == n_,
                 "validate: root must own the full index set");
  for (index_t i = 0; i < level_begin(depth_); ++i) {
    const ClusterNode& nd = nodes_[i];
    const ClusterNode& l = nodes_[left_child(i)];
    const ClusterNode& r = nodes_[right_child(i)];
    HODLRX_REQUIRE(l.begin == nd.begin && l.end == r.begin && r.end == nd.end,
                   "validate: children of node " << i
                                                 << " do not partition it");
    HODLRX_REQUIRE(l.size() > 0 && r.size() > 0,
                   "validate: empty node under " << i);
  }
}

GeometricTree build_kd_tree(const PointSet& pts, index_t leaf_size,
                            index_t depth) {
  const index_t n = pts.size();
  HODLRX_REQUIRE(n > 0, "build_kd_tree: empty point set");
  if (depth < 0) {
    depth = 0;
    while ((n + (index_t{1} << depth) - 1) / (index_t{1} << depth) > leaf_size)
      ++depth;
    while ((index_t{1} << depth) > n) --depth;
  }
  GeometricTree out;
  out.tree = ClusterTree::with_depth(n, depth);
  out.perm.resize(n);
  std::iota(out.perm.begin(), out.perm.end(), index_t{0});

  // Reorder the permutation level by level so that each node's points are
  // split by the median of their widest coordinate. The index ranges of the
  // (already fixed) ClusterTree determine the split position.
  for (index_t level = 0; level < depth; ++level) {
    for (index_t i = ClusterTree::level_begin(level);
         i < ClusterTree::level_begin(level + 1); ++i) {
      const ClusterNode& nd = out.tree.node(i);
      const index_t mid = out.tree.node(ClusterTree::left_child(i)).end;
      // Widest coordinate over this node's points.
      index_t split_dim = 0;
      double best_extent = -1;
      for (index_t d = 0; d < pts.dim; ++d) {
        double lo = pts.coord(out.perm[nd.begin], d), hi = lo;
        for (index_t j = nd.begin; j < nd.end; ++j) {
          const double v = pts.coord(out.perm[j], d);
          lo = std::min(lo, v);
          hi = std::max(hi, v);
        }
        if (hi - lo > best_extent) {
          best_extent = hi - lo;
          split_dim = d;
        }
      }
      std::nth_element(out.perm.begin() + nd.begin, out.perm.begin() + mid,
                       out.perm.begin() + nd.end,
                       [&](index_t x, index_t y) {
                         return pts.coord(x, split_dim) <
                                pts.coord(y, split_dim);
                       });
    }
  }
  out.points = pts.permuted(out.perm);
  return out;
}

}  // namespace hodlrx
