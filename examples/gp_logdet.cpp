/// Gaussian-process regression at scale (paper Sec. I a: "kernel methods in
/// machine learning"): evaluating the GP log-marginal likelihood
///   log p(y) = -1/2 y^T K^{-1} y - 1/2 log det K - (n/2) log 2 pi
/// needs exactly the two operations the HODLR factorization provides in
/// near-linear time: a solve and a log-determinant (Theorem 5).

#include "common/timer.hpp"
#include "common/random.hpp"
#include <cstdio>

#include "core/factorization.hpp"
#include "kernels/kernels.hpp"

using namespace hodlrx;

int main() {
  const index_t n = 30000;
  const double two_pi = 2 * 3.14159265358979323846;

  PointSet pts = uniform_random_points(n, 1, 0.0, 10.0, 2024);
  GeometricTree geo = build_kd_tree(pts, 64);

  // Matern 3/2 covariance with noise variance 1e-2 on the diagonal.
  Matern32Kernel<double> cov(std::move(geo.points), /*length scale=*/1.0,
                             /*noise=*/1e-2);

  // Synthetic observations: a smooth function of the (permuted) inputs.
  // (The permuted points now live inside the kernel object.)
  const PointSet& x_train = cov.points();
  Matrix<double> y(n, 1);
  for (index_t i = 0; i < n; ++i)
    y(i, 0) = std::sin(1.7 * x_train.coord(i, 0)) +
              0.1 * std::cos(9.0 * x_train.coord(i, 0));

  BuildOptions opt;
  opt.tol = 1e-10;
  WallTimer t;
  HodlrMatrix<double> k = HodlrMatrix<double>::build(cov, geo.tree, opt);
  std::printf("compress: %.2f s (%lld unknowns, %.1f MB)\n", t.seconds(),
              (long long)n, k.bytes() / 1e6);

  t.reset();
  auto f = HodlrFactorization<double>::factor(PackedHodlr<double>::pack(k), {});
  std::printf("factor:   %.2f s\n", t.seconds());

  t.reset();
  Matrix<double> alpha = f.solve(y);  // K^{-1} y
  auto ld = f.logdet();
  std::printf("solve+logdet: %.3f s\n", t.seconds());

  double quad = 0;
  for (index_t i = 0; i < n; ++i) quad += y(i, 0) * alpha(i, 0);
  const double loglik =
      -0.5 * quad - 0.5 * ld.log_abs - 0.5 * n * std::log(two_pi);
  std::printf("log|det K| = %.4f (sign %+.0f; SPD covariance => +1)\n",
              ld.log_abs, ld.phase);
  std::printf("GP log-marginal likelihood = %.4f\n", loglik);

  // Residual check of the solve.
  Matrix<double> r(n, 1);
  k.apply(alpha, r.view());
  axpy(-1.0, ConstMatrixView<double>(y), r.view());
  std::printf("solve relres = %.2e\n", norm_fro<double>(r) / norm_fro<double>(y));
  return 0;
}
