/// Brownian-dynamics mobility solve with the RPY tensor (paper Sec. IV-A):
/// given forces F on suspended beads, solve M U = F for velocities, where M
/// is the RPY mobility matrix. Runs both the paper's 1-D benchmark
/// configuration and the full 3-D 3x3-tensor variant, cross-checking the
/// batched factorization against the HODLRlib-style recursive baseline.

#include "common/random.hpp"
#include <cstdio>

#include "baseline/recursive_solver.hpp"
#include "core/factorization.hpp"
#include "kernels/rpy.hpp"

using namespace hodlrx;

int main() {
  // --- 1-D configuration (the paper's Table III setup) ---------------------
  {
    const index_t n = 50000;
    PointSet pts = uniform_random_points(n, 1, -1.0, 1.0, 1);
    GeometricTree geo = build_kd_tree(pts, 64);
    RpyKernel1D<double> kernel(std::move(geo.points), {});
    std::printf("[1-D RPY] N=%lld, bead radius a=%.3e\n", (long long)n,
                kernel.params().a);

    BuildOptions opt;
    opt.tol = 1e-12;
    HodlrMatrix<double> h = HodlrMatrix<double>::build(kernel, geo.tree, opt);
    auto f = HodlrFactorization<double>::factor(PackedHodlr<double>::pack(h), {});
    RecursiveSolver<double> baseline = RecursiveSolver<double>::factor(h);

    Matrix<double> force = random_matrix<double>(n, 1, 3);
    Matrix<double> u1 = f.solve(force);
    Matrix<double> u2 = baseline.solve(force);
    Matrix<double> diff = to_matrix(u1.view());
    axpy(-1.0, ConstMatrixView<double>(u2), diff.view());
    std::printf("  batched vs recursive agreement: %.2e\n",
                norm_fro<double>(diff) / norm_fro<double>(u1));

    Matrix<double> r(n, 1);
    h.apply(u1, r.view());
    axpy(-1.0, ConstMatrixView<double>(force), r.view());
    std::printf("  relres = %.2e, max rank = %lld\n",
                norm_fro<double>(r) / norm_fro<double>(force),
                (long long)h.max_rank());
  }

  // --- 3-D tensor configuration -------------------------------------------
  {
    const index_t particles = 1200;  // 3600 unknowns
    PointSet pts = uniform_random_points(particles, 3, -1.0, 1.0, 5);
    Rpy3DTree t = build_rpy3d_tree(pts, 32);
    RpyKernel3D<double> kernel(std::move(t.points), {});
    const index_t n = kernel.rows();
    std::printf("[3-D RPY] %lld particles -> N=%lld unknowns\n",
                (long long)particles, (long long)n);

    BuildOptions opt;
    opt.tol = 1e-5;  // 3-D ranks grow with N (paper Remark 1)
    HodlrMatrix<double> h = HodlrMatrix<double>::build(kernel, t.tree, opt);
    auto f = HodlrFactorization<double>::factor(PackedHodlr<double>::pack(h), {});

    Matrix<double> force = random_matrix<double>(n, 1, 7);
    Matrix<double> u = f.solve(force);
    Matrix<double> r(n, 1);
    h.apply(u, r.view());
    axpy(-1.0, ConstMatrixView<double>(force), r.view());
    std::printf("  relres = %.2e, max rank = %lld (higher than 1-D, as "
                "Remark 1 predicts)\n",
                norm_fro<double>(r) / norm_fro<double>(force),
                (long long)h.max_rank());
  }
  return 0;
}
