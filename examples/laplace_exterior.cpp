/// Exterior Laplace Dirichlet problem via the completed double-layer BIE
/// (paper Sec. IV-B, eqs. 19-21): an infinite domain outside a smooth
/// contour, boundary data from a known harmonic field, solved with the
/// HODLR direct solver and verified against the exact solution at exterior
/// evaluation points.

#include <cstdio>

#include "bie/laplace.hpp"
#include "core/factorization.hpp"

using namespace hodlrx;

int main() {
  const index_t n = 16384;
  bie::BlobContour contour;  // the Fig. 6 analogue
  bie::ContourDiscretization disc = bie::discretize(contour, n);
  std::printf("Laplace exterior BVP on a smooth contour, N=%lld nodes\n",
              (long long)n);

  // Exact solution: the field of a unit charge INSIDE the contour (harmonic
  // in the exterior, satisfies the decay condition eq. 20).
  const bie::Point2 x0{0.35, -0.2};
  bie::LaplaceExteriorBIE<double> gen(disc, /*z=*/{0.0, 0.0});

  // Compress and factor.
  ClusterTree tree = ClusterTree::uniform(n, 64);
  BuildOptions bopt;
  bopt.tol = 1e-11;
  HodlrMatrix<double> h = HodlrMatrix<double>::build(gen, tree, bopt);
  auto f = HodlrFactorization<double>::factor(PackedHodlr<double>::pack(h), {});
  std::printf("compressed to %.1f MB, max rank %lld\n", h.bytes() / 1e6,
              (long long)h.max_rank());

  // Dirichlet data f = u_exact on Gamma; solve for the density sigma.
  Matrix<double> rhs(n, 1);
  for (index_t i = 0; i < n; ++i)
    rhs(i, 0) = bie::laplace_greens(disc.x[i], x0);
  Matrix<double> sigma = f.solve(rhs);

  // Evaluate the representation in the exterior and compare to the truth.
  const std::vector<bie::Point2> targets = {
      {4.0, 0.0}, {-3.0, 2.0}, {0.5, -5.0}, {10.0, 10.0}};
  auto u = bie::laplace_exterior_potential<double>(disc, {0.0, 0.0},
                                                   sigma.data(), targets);
  std::printf("%24s  %14s  %14s  %10s\n", "target", "computed", "exact",
              "error");
  for (std::size_t t = 0; t < targets.size(); ++t) {
    const double exact = bie::laplace_greens(targets[t], x0);
    std::printf("      (%6.2f, %6.2f)    %14.10f  %14.10f  %10.2e\n",
                targets[t].x, targets[t].y, u[t], exact,
                std::abs(u[t] - exact));
  }
  return 0;
}
