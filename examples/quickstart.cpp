/// Quickstart: compress a kernel matrix into HODLR form, factor it with the
/// batched engine, solve a linear system, and compute its log-determinant.
///
///   1. make a point set and a cluster tree (geometry-aware bisection);
///   2. define the matrix implicitly through a kernel generator;
///   3. HodlrMatrix::build compresses every off-diagonal block (ACA);
///   4. PackedHodlr::pack lays the bases out in the paper's big-matrix form;
///   5. HodlrFactorization::factor runs Algorithm 3; solve runs Algorithm 4.

#include "common/random.hpp"
#include <cstdio>

#include "core/factorization.hpp"
#include "kernels/kernels.hpp"

using namespace hodlrx;

int main() {
  const index_t n = 20000;

  // 1. Points and tree.
  PointSet pts = uniform_random_points(n, 1, -1.0, 1.0, /*seed=*/42);
  GeometricTree geo = build_kd_tree(pts, /*leaf_size=*/64);

  // 2. Implicit matrix: Gaussian kernel plus a small ridge.
  GaussianKernel<double> kernel(std::move(geo.points), /*scale=*/0.5,
                                /*diag_shift=*/1e-2);

  // 3. Compress. tol controls the accuracy/speed trade-off (Sec. I of the
  //    paper: high tol -> fast direct solver, low tol -> preconditioner).
  BuildOptions build_opt;
  build_opt.tol = 1e-10;
  HodlrMatrix<double> h = HodlrMatrix<double>::build(kernel, geo.tree, build_opt);
  std::printf("HODLR: N=%lld, depth=%lld, max off-diagonal rank=%lld, "
              "%.1f MB (dense would be %.1f MB)\n",
              (long long)h.n(), (long long)h.depth(), (long long)h.max_rank(),
              h.bytes() / 1e6, double(n) * n * sizeof(double) / 1e6);

  // 4-5. Pack + factor + solve.
  PackedHodlr<double> packed = PackedHodlr<double>::pack(h);
  HodlrFactorization<double> f = HodlrFactorization<double>::factor(packed, {});

  Matrix<double> b = random_matrix<double>(n, 1, 7);
  Matrix<double> x = f.solve(b);

  // Residual against the compressed operator.
  Matrix<double> r(n, 1);
  h.apply(x, r.view());
  axpy(-1.0, ConstMatrixView<double>(b), r.view());
  std::printf("relative residual ||b - A x|| / ||b|| = %.2e\n",
              norm_fro<double>(r) / norm_fro<double>(b));

  // Bonus: log-determinant (Theorem 5 of the paper).
  auto ld = f.logdet();
  std::printf("log|det A| = %.6f (sign %+.0f)\n", ld.log_abs, ld.phase);
  return 0;
}
