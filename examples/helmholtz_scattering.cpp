/// Time-harmonic acoustic scattering from a sound-soft obstacle (paper Sec.
/// IV-C): an incident plane wave hits the smooth contour; the scattered
/// field solves the exterior Helmholtz Dirichlet problem, reformulated as
/// the combined-field BIE (eq. 24) and solved two ways:
///   1. high-accuracy HODLR factorization as a fast DIRECT solver;
///   2. low-accuracy factorization as a PRECONDITIONER inside GMRES —
///      "the resulting linear system is notoriously difficult to solve
///      iteratively" without one (Sec. IV-C).

#include <cstdio>

#include "bie/helmholtz.hpp"
#include "core/factorization.hpp"
#include "precond/gmres.hpp"

using namespace hodlrx;
using C = std::complex<double>;

int main() {
  const index_t n = 8192;
  const double kappa = 60.0, eta = 60.0;  // eta = kappa, as in the paper
  bie::BlobContour contour;
  bie::ContourDiscretization disc = bie::discretize(contour, n);
  bie::HelmholtzCombinedBIE<C> gen(disc, kappa, eta, /*quadrature order=*/6);
  std::printf("Helmholtz scattering: kappa=%.0f, N=%lld (%.1f nodes per "
              "wavelength)\n",
              kappa, (long long)n,
              double(n) / (kappa * 14.4 / (2 * 3.14159265)));

  // Incident plane wave exp(i kappa d.x); sound-soft: u_scat = -u_inc on
  // the boundary.
  const double dir[2] = {1.0, 0.3};
  const double dn = std::hypot(dir[0], dir[1]);
  Matrix<C> rhs(n, 1);
  for (index_t i = 0; i < n; ++i) {
    const double phase =
        kappa * (dir[0] * disc.x[i].x + dir[1] * disc.x[i].y) / dn;
    rhs(i, 0) = -std::exp(C(0.0, phase));
  }

  ClusterTree tree = ClusterTree::uniform(n, 64);

  // --- 1. fast direct solver ----------------------------------------------
  BuildOptions hi;
  hi.tol = 1e-10;
  HodlrMatrix<C> h_hi = HodlrMatrix<C>::build(gen, tree, hi);
  auto direct = HodlrFactorization<C>::factor(PackedHodlr<C>::pack(h_hi), {});
  Matrix<C> sigma = direct.solve(rhs);
  Matrix<C> r(n, 1);
  h_hi.apply(sigma, r.view());
  axpy(C{-1}, ConstMatrixView<C>(rhs), r.view());
  std::printf("[direct]   tol 1e-10: relres %.2e, max rank %lld, %.1f MB\n",
              norm_fro<C>(r) / norm_fro<C>(rhs), (long long)h_hi.max_rank(),
              direct.bytes() / 1e6);

  // --- 2. low-accuracy preconditioner + GMRES -----------------------------
  BuildOptions lo;
  lo.tol = 1e-4;
  HodlrMatrix<C> h_lo = HodlrMatrix<C>::build(gen, tree, lo);
  auto pre_f = HodlrFactorization<C>::factor(PackedHodlr<C>::pack(h_lo), {});
  LinearOp<C> apply_a = [&h_hi, n](const C* x, C* y) {
    ConstMatrixView<C> xv(x, n, 1, n);
    MatrixView<C> yv{y, n, 1, n};
    h_hi.apply(xv, yv);
  };
  LinearOp<C> precond = [&pre_f, n](const C* x, C* y) {
    std::copy_n(x, n, y);
    MatrixView<C> v{y, n, 1, n};
    pre_f.solve_inplace(v);
  };
  std::vector<C> x(n, C{});
  GmresOptions gopt;
  gopt.tol = 1e-10;
  gopt.max_iterations = 150;
  auto res = gmres<C>(n, apply_a, precond, rhs.data(), x.data(), gopt);
  std::printf(
      "[precond]  tol 1e-4 + GMRES: %s in %lld iterations (relres %.2e), "
      "preconditioner %.1f MB\n",
      res.converged ? "converged" : "did NOT converge",
      (long long)res.iterations, res.relres, pre_f.bytes() / 1e6);

  // Far-field sample of the scattered wave.
  const std::vector<bie::Point2> targets = {{6.0, 2.0}, {-5.0, -3.0}};
  auto u = bie::helmholtz_potential<C>(disc, kappa, eta, sigma.data(), targets);
  for (std::size_t t = 0; t < targets.size(); ++t)
    std::printf("scattered field at (%4.1f, %4.1f) = %+.6f %+.6fi\n",
                targets[t].x, targets[t].y, u[t].real(), u[t].imag());
  return 0;
}
